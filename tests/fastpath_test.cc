// Fastpath mechanics (§3): DLHT/PCC hits, coherence with chmod/chown/
// rename (§3.2), credential isolation, directory-reference semantics,
// symlink aliases (§4.2), and the Figure 6 test hooks.
#include "src/core/pcc.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

class FastpathTest : public ::testing::Test {
 protected:
  FastpathTest() : world_(CacheConfig::Optimized()) {
    Task& t = *world_.root;
    EXPECT_OK(t.Mkdir("/home"));
    EXPECT_OK(t.Mkdir("/home/alice"));
    EXPECT_OK(t.Mkdir("/home/alice/docs"));
    auto fd = t.Open("/home/alice/docs/file", kOCreat | kOWrite);
    EXPECT_OK(fd);
    EXPECT_OK(t.Close(*fd));
    EXPECT_OK(t.Chmod("/home", 0755));
    EXPECT_OK(t.Chmod("/home/alice", 0755));
    EXPECT_OK(t.Chmod("/home/alice/docs", 0755));
  }

  uint64_t FastHits() { return world_.kernel->stats().fastpath_hits.value(); }

  TestWorld world_;
};

TEST_F(FastpathTest, SecondLookupHitsFastpath) {
  Task& t = *world_.root;
  ASSERT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));  // slowpath, populates
  uint64_t before = FastHits();
  ASSERT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  EXPECT_EQ(FastHits(), before + 1);
}

TEST_F(FastpathTest, FastpathSurvivesSlowpathForbidden) {
  Task& t = *world_.root;
  ASSERT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  PathWalker::forbid_slowpath = true;
  EXPECT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  PathWalker::forbid_slowpath = false;
}

TEST_F(FastpathTest, ChmodOfAncestorInvalidatesPrefixChecks) {
  TaskPtr alice = world_.UserTask(1000, 1000);
  ASSERT_OK(alice->Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  ASSERT_OK(alice->Statx(kAtFdCwd, "/home/alice/docs/file", 0));  // fastpath warm
  // Root revokes search permission on an ancestor.
  ASSERT_OK(world_.root->Chmod("/home/alice", 0700));
  // Alice (uid 1000, not the owner — dirs are root-owned here) must now be
  // denied, with NO stale fastpath grant.
  EXPECT_ERR(alice->Statx(kAtFdCwd, "/home/alice/docs/file", 0), Errno::kEACCES);
  // Restore and verify recovery.
  ASSERT_OK(world_.root->Chmod("/home/alice", 0755));
  EXPECT_OK(alice->Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  EXPECT_OK(alice->Statx(kAtFdCwd, "/home/alice/docs/file", 0));
}

TEST_F(FastpathTest, ChownOfAncestorInvalidates) {
  TaskPtr bob = world_.UserTask(1001, 1001);
  ASSERT_OK(world_.root->Chmod("/home/alice", 0750));
  ASSERT_OK(world_.root->Chown("/home/alice", 1001, 1001));
  EXPECT_OK(bob->Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  EXPECT_OK(bob->Statx(kAtFdCwd, "/home/alice/docs/file", 0));  // warm
  ASSERT_OK(world_.root->Chown("/home/alice", 0, 0));
  EXPECT_ERR(bob->Statx(kAtFdCwd, "/home/alice/docs/file", 0), Errno::kEACCES);
}

TEST_F(FastpathTest, RenameInvalidatesOldPath) {
  Task& t = *world_.root;
  ASSERT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  ASSERT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  ASSERT_OK(t.Rename("/home/alice/docs", "/home/alice/papers"));
  EXPECT_ERR(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0), Errno::kENOENT);
  EXPECT_OK(t.Statx(kAtFdCwd, "/home/alice/papers/file", 0));
  EXPECT_OK(t.Statx(kAtFdCwd, "/home/alice/papers/file", 0));
}

TEST_F(FastpathTest, CredentialsDoNotShareGrants) {
  TaskPtr alice = world_.UserTask(1000, 1000);
  TaskPtr bob = world_.UserTask(1001, 1001);
  ASSERT_OK(world_.root->Mkdir("/private"));
  ASSERT_OK(world_.root->Chown("/private", 1000, 1000));
  ASSERT_OK(world_.root->Chmod("/private", 0700));
  auto fd = alice->Open("/private/secret", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(alice->Close(*fd));
  // Alice warms her PCC on the path.
  ASSERT_OK(alice->Statx(kAtFdCwd, "/private/secret", 0));
  ASSERT_OK(alice->Statx(kAtFdCwd, "/private/secret", 0));
  // Bob must not ride Alice's memoized prefix checks.
  EXPECT_ERR(bob->Statx(kAtFdCwd, "/private/secret", 0), Errno::kEACCES);
}

TEST_F(FastpathTest, SameCredSharesPcc) {
  TaskPtr a1 = world_.UserTask(1000, 1000);
  TaskPtr a2 = a1->Fork();  // same cred object
  ASSERT_OK(a1->Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  uint64_t before = FastHits();
  ASSERT_OK(a2->Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  EXPECT_EQ(FastHits(), before + 1);  // a2 benefits from a1's prefix check
  EXPECT_EQ(a1->cred().get(), a2->cred().get());
}

TEST_F(FastpathTest, CommitCredsDedupPreservesPcc) {
  TaskPtr alice = world_.UserTask(1000, 1000);
  const Cred* cred_before = alice->cred().get();
  // Re-applying an identical identity must keep the cred (and its PCC).
  alice->SetCred(MakeCred(1000, 1000));
  EXPECT_EQ(alice->cred().get(), cred_before);
  // A different identity replaces it.
  alice->SetCred(MakeCred(1000, 2000));
  EXPECT_NE(alice->cred().get(), cred_before);
}

TEST_F(FastpathTest, NegativeLookupsHitFastpath) {
  Task& t = *world_.root;
  EXPECT_ERR(t.Statx(kAtFdCwd, "/home/alice/docs/nope", 0), Errno::kENOENT);
  uint64_t before = FastHits();
  EXPECT_ERR(t.Statx(kAtFdCwd, "/home/alice/docs/nope", 0), Errno::kENOENT);
  EXPECT_EQ(FastHits(), before + 1);
  // Creating the file must kill the negative.
  auto fd = t.Open("/home/alice/docs/nope", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(t.Close(*fd));
  EXPECT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/nope", 0));
}

TEST_F(FastpathTest, DeepNegativesServeFullPaths) {
  Task& t = *world_.root;
  EXPECT_ERR(t.Statx(kAtFdCwd, "/home/alice/gone/x/y/z", 0), Errno::kENOENT);
  uint64_t before = FastHits();
  EXPECT_ERR(t.Statx(kAtFdCwd, "/home/alice/gone/x/y/z", 0), Errno::kENOENT);
  EXPECT_EQ(FastHits(), before + 1);
  // Creating the intermediate as a file flips the suffix to ENOTDIR.
  auto fd = t.Open("/home/alice/gone", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(t.Close(*fd));
  EXPECT_ERR(t.Statx(kAtFdCwd, "/home/alice/gone/x/y/z", 0), Errno::kENOTDIR);
}

TEST_F(FastpathTest, EnotdirDeepNegatives) {
  Task& t = *world_.root;
  auto fd = t.Open("/plainfile", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(t.Close(*fd));
  EXPECT_ERR(t.Statx(kAtFdCwd, "/plainfile/below", 0), Errno::kENOTDIR);
  uint64_t before = FastHits();
  EXPECT_ERR(t.Statx(kAtFdCwd, "/plainfile/below", 0), Errno::kENOTDIR);
  EXPECT_EQ(FastHits(), before + 1);  // cached ENOTDIR (§5.2)
}

TEST_F(FastpathTest, TrailingSymlinkFollowUsesTargetSignature) {
  Task& t = *world_.root;
  ASSERT_OK(t.Symlink("/home/alice/docs/file", "/shortcut"));
  ASSERT_OK(t.Statx(kAtFdCwd, "/shortcut", 0));  // slowpath: memoizes target sig
  uint64_t before = FastHits();
  ASSERT_OK(t.Statx(kAtFdCwd, "/shortcut", 0));
  EXPECT_EQ(FastHits(), before + 1);
}

TEST_F(FastpathTest, MidPathSymlinkAliasHits) {
  Task& t = *world_.root;
  ASSERT_OK(t.Symlink("/home/alice", "/al"));
  ASSERT_OK(t.Statx(kAtFdCwd, "/al/docs/file", 0));  // builds alias chain
  uint64_t before = FastHits();
  ASSERT_OK(t.Statx(kAtFdCwd, "/al/docs/file", 0));
  EXPECT_EQ(FastHits(), before + 1);
  // Target-side permission changes must invalidate alias-path access too.
  TaskPtr alice = world_.UserTask(1000, 1000);
  ASSERT_OK(alice->Statx(kAtFdCwd, "/al/docs/file", 0));
  ASSERT_OK(alice->Statx(kAtFdCwd, "/al/docs/file", 0));
  ASSERT_OK(world_.root->Chmod("/home/alice/docs", 0700));
  EXPECT_ERR(alice->Statx(kAtFdCwd, "/al/docs/file", 0), Errno::kEACCES);
}

TEST_F(FastpathTest, SymlinkRemovalDropsAliases) {
  Task& t = *world_.root;
  ASSERT_OK(t.Symlink("/home/alice", "/al2"));
  ASSERT_OK(t.Statx(kAtFdCwd, "/al2/docs/file", 0));
  ASSERT_OK(t.Statx(kAtFdCwd, "/al2/docs/file", 0));
  ASSERT_OK(t.Unlink("/al2"));
  EXPECT_ERR(t.Statx(kAtFdCwd, "/al2/docs/file", 0), Errno::kENOENT);
}

TEST_F(FastpathTest, DotDotPathsStayCorrect) {
  Task& t = *world_.root;
  ASSERT_OK(t.Mkdir("/home/alice/music"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_OK(t.Statx(kAtFdCwd, "/home/alice/music/../docs/file", 0));
  }
  // Permission change on the dir being exited must be honored.
  TaskPtr alice = world_.UserTask(1000, 1000);
  EXPECT_OK(alice->Statx(kAtFdCwd, "/home/alice/music/../docs/file", 0));
  EXPECT_OK(alice->Statx(kAtFdCwd, "/home/alice/music/../docs/file", 0));
  ASSERT_OK(world_.root->Chmod("/home/alice/music", 0700));
  // POSIX semantics: alice needs search permission on music to pass
  // through it, even though ".." leaves immediately.
  EXPECT_ERR(alice->Statx(kAtFdCwd, "/home/alice/music/../docs/file", 0),
             Errno::kEACCES);
}

TEST_F(FastpathTest, DirectoryReferenceSemantics) {
  // §3.2: a process keeps using its cwd after an ancestor permission
  // revocation, but that must not leak cacheable full-path grants.
  TaskPtr alice = world_.UserTask(1000, 1000);
  ASSERT_OK(world_.root->Chmod("/home/alice", 0755));
  ASSERT_OK(alice->Chdir("/home/alice/docs"));
  EXPECT_OK(alice->Statx(kAtFdCwd, "file", 0));
  ASSERT_OK(world_.root->Chmod("/home/alice", 0700));  // revoke
  // Relative access through the retained cwd still works...
  EXPECT_OK(alice->Statx(kAtFdCwd, "file", 0));
  EXPECT_OK(alice->Statx(kAtFdCwd, "file", 0));
  // ...but absolute access is now denied — including right after the
  // relative lookups above (no PCC laundering).
  EXPECT_ERR(alice->Statx(kAtFdCwd, "/home/alice/docs/file", 0), Errno::kEACCES);
}

TEST_F(FastpathTest, ForcedMissFallsBackCorrectly) {
  Task& t = *world_.root;
  ASSERT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  PathWalker::force_fastpath_miss = true;
  uint64_t before = FastHits();
  EXPECT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  EXPECT_EQ(FastHits(), before);  // fastpath bypassed
  PathWalker::force_fastpath_miss = false;
}

TEST_F(FastpathTest, PrivilegedBypassDisablesAcceleration) {
  // §3.3: "disallowing signature-based lookup acceleration for privileged
  // binaries" — implemented here behind a config flag.
  CacheConfig cfg = CacheConfig::Optimized();
  cfg.fastpath_for_privileged = false;
  TestWorld hardened(cfg);
  Task& root = *hardened.root;
  ASSERT_OK(root.Mkdir("/sys"));
  auto fd = root.Open("/sys/shadow", kOCreat | kOWrite, 0600);
  ASSERT_OK(fd);
  ASSERT_OK(root.Close(*fd));
  ASSERT_OK(root.Statx(kAtFdCwd, "/sys/shadow", 0));
  uint64_t fast_before = hardened.kernel->stats().fastpath_hits.value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(root.Statx(kAtFdCwd, "/sys/shadow", 0));  // root: slowpath only
  }
  EXPECT_EQ(hardened.kernel->stats().fastpath_hits.value(), fast_before);
  // Unprivileged tasks still ride the fastpath.
  ASSERT_OK(root.Chmod("/sys", 0755));
  ASSERT_OK(root.Chmod("/sys/shadow", 0644));
  TaskPtr user = hardened.UserTask(1000, 1000);
  ASSERT_OK(user->Statx(kAtFdCwd, "/sys/shadow", 0));
  ASSERT_OK(user->Statx(kAtFdCwd, "/sys/shadow", 0));
  EXPECT_GT(hardened.kernel->stats().fastpath_hits.value(), fast_before);
}

TEST_F(FastpathTest, PccEpochFlushOnWraparound) {
  Task& t = *world_.root;
  ASSERT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  ASSERT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  // Simulate the version-counter wraparound: bump the global PCC epoch.
  world_.kernel->BumpPccEpoch();
  uint64_t before = FastHits();
  EXPECT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));  // PCC self-flushed: slow
  EXPECT_EQ(FastHits(), before);
  EXPECT_OK(t.Statx(kAtFdCwd, "/home/alice/docs/file", 0));  // repopulated
  EXPECT_EQ(FastHits(), before + 1);
}

TEST_F(FastpathTest, LabelLsmDecisionsAreMemoizedAndInvalidated) {
  auto lsm = std::make_unique<LabelLsm>();
  LabelLsm* lsm_ptr = lsm.get();
  world_.kernel->security().AddModule(std::move(lsm));
  ASSERT_OK(world_.root->SetSecurityLabel("/home/alice", "alice_home"));
  TaskPtr agent = world_.UserTask(1000, 1000, {}, "agent_t");
  // No rule: (agent_t, alice_home) denied for exec.
  EXPECT_ERR(agent->Statx(kAtFdCwd, "/home/alice/docs/file", 0), Errno::kEACCES);
  lsm_ptr->Allow("agent_t", "alice_home", kMayRead | kMayExec);
  // Policy changed: caller must invalidate (the LSM contract). Relabeling
  // with the same label reuses the subtree invalidation path.
  ASSERT_OK(world_.root->SetSecurityLabel("/home/alice", "alice_home"));
  EXPECT_OK(agent->Statx(kAtFdCwd, "/home/alice/docs/file", 0));
  EXPECT_OK(agent->Statx(kAtFdCwd, "/home/alice/docs/file", 0));  // memoized
  lsm_ptr->ClearRule("agent_t", "alice_home");
  ASSERT_OK(world_.root->SetSecurityLabel("/home/alice", "alice_home"));
  EXPECT_ERR(agent->Statx(kAtFdCwd, "/home/alice/docs/file", 0), Errno::kEACCES);
}

}  // namespace
}  // namespace dircache
