// Media-failure injection: the simulated block device can be told to fail
// the next N reads or writes with EIO. These tests pin the error-path
// invariants a production VFS must keep:
//   - an EIO lookup propagates to the caller and is NOT cached as ENOENT
//     (no negative dentry for a failed read);
//   - the buffer cache neither caches a failed read nor clears the dirty
//     bit on a failed write-back;
//   - once the fault clears, every operation recovers with no residue.
#include "src/storage/buffer_cache.h"
#include "src/storage/fsck.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

class FaultInjectionTest : public ::testing::TestWithParam<CacheConfig> {
 protected:
  FaultInjectionTest()
      : fs_(std::make_shared<DiskFs>(SmallDisk())),
        world_(GetParam(), fs_) {}

  static DiskFsOptions SmallDisk() {
    DiskFsOptions opt;
    opt.num_blocks = 1 << 14;
    opt.max_inodes = 1 << 12;
    opt.buffer_cache_blocks = 64;
    return opt;
  }

  Task& T() { return *world_.root; }

  std::shared_ptr<DiskFs> fs_;
  TestWorld world_;
};

TEST_P(FaultInjectionTest, ColdLookupEioIsNotCachedAsNegative) {
  ASSERT_OK(T().Mkdir("/d"));
  auto fd = T().Open("/d/f", kOCreat | kOWrite, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  world_.kernel->DropCaches();

  // Every device read fails while the fault is armed; the cold lookup must
  // surface EIO, not invent ENOENT.
  fs_->device().InjectReadFaults(1000);
  auto st = T().Statx(kAtFdCwd, "/d/f", 0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error(), Errno::kEIO);
  EXPECT_GT(fs_->device().io_errors(), 0u);

  // Fault clears: the same path must resolve — proving neither a negative
  // dentry nor a poisoned buffer survived the failure.
  fs_->device().InjectReadFaults(0);
  ASSERT_OK(T().Statx(kAtFdCwd, "/d/f", 0));
  ASSERT_OK(T().Statx(kAtFdCwd, "/d/f", 0));  // and again via whatever cache applies
}

TEST_P(FaultInjectionTest, ReaddirEioPropagatesAndRecovers) {
  ASSERT_OK(T().Mkdir("/dir"));
  for (int i = 0; i < 20; ++i) {
    auto fd = T().Open("/dir/f" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(T().Close(*fd));
  }
  world_.kernel->DropCaches();

  fs_->device().InjectReadFaults(1000);
  auto dirfd = T().Open("/dir", kORead);
  if (dirfd.ok()) {  // opening may already need the faulted device
    auto entries = T().ReadDirFd(*dirfd);
    EXPECT_FALSE(entries.ok());
    ASSERT_OK(T().Close(*dirfd));
  }
  fs_->device().InjectReadFaults(0);

  auto fd2 = T().Open("/dir", kORead);
  ASSERT_OK(fd2);
  auto entries = T().ReadDirFd(*fd2);
  ASSERT_OK(entries);
  EXPECT_EQ(entries->size(), 20u);  // dot entries are not emitted
  ASSERT_OK(T().Close(*fd2));
}

TEST_P(FaultInjectionTest, TransientEioDoesNotCorruptTheTree) {
  // Random churn with intermittent read faults, then an fsck-clean check:
  // failed reads must never be allowed to damage on-disk state.
  Rng rng(42);
  ASSERT_OK(T().Mkdir("/w"));
  for (int round = 0; round < 200; ++round) {
    if (round % 17 == 0) {
      fs_->device().InjectReadFaults(static_cast<uint32_t>(rng.Next() % 4));
    }
    std::string name = "/w/n" + std::to_string(rng.Next() % 32);
    switch (rng.Next() % 4) {
      case 0: {
        auto fd = T().Open(name, kOCreat | kOWrite, 0644);
        if (fd.ok()) {
          (void)T().Close(*fd);
        }
        break;
      }
      case 1:
        (void)T().Unlink(name);
        break;
      case 2:
        (void)T().Statx(kAtFdCwd, name, 0);
        break;
      default:
        world_.kernel->DropCaches();
        break;
    }
  }
  fs_->device().InjectReadFaults(0);
  world_.kernel->DropCaches();
  FsckReport report = RunFsck(*fs_);
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST(FaultInjectionOptimizedTest, DirCompletenessServesMissesDespiteFaults) {
  // §5.1 side effect: once a directory is DIR_COMPLETE, misses under it are
  // answered from the cache — even while the device is returning errors.
  // (The same is true of any warm cache hit; this pins the strongest case,
  // where the *absence* of a name is served without touching the device.)
  auto fs = std::make_shared<DiskFs>();
  TestWorld world(CacheConfig::Optimized(), fs);
  Task& t = *world.root;
  ASSERT_OK(t.Mkdir("/spool"));
  auto fd = t.Open("/spool/job1", kOCreat | kOWrite, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(t.Close(*fd));
  // A full readdir marks /spool DIR_COMPLETE.
  auto dfd = t.Open("/spool", kORead);
  ASSERT_OK(dfd);
  for (;;) {
    auto batch = t.ReadDirFd(*dfd);
    ASSERT_OK(batch);
    if (batch->empty()) {
      break;
    }
  }
  ASSERT_OK(t.Close(*dfd));

  fs->device().InjectReadFaults(1000);
  uint64_t reads_before = fs->device().reads();
  EXPECT_ERR(t.Statx(kAtFdCwd, "/spool/job2", 0), Errno::kENOENT);  // not EIO
  EXPECT_OK(t.Statx(kAtFdCwd, "/spool/job1", 0));                   // warm hit
  EXPECT_EQ(fs->device().reads(), reads_before);  // device never consulted
  fs->device().InjectReadFaults(0);
}

INSTANTIATE_TEST_SUITE_P(Kernels, FaultInjectionTest,
                         ::testing::Values(CacheConfig::Baseline(),
                                           CacheConfig::Optimized()),
                         [](const auto& info) {
                           return info.index == 0 ? "baseline" : "optimized";
                         });

// ---------------------------------------------------------------------------
// Storage-layer invariants, below the VFS.

TEST(BufferCacheFaultTest, FailedReadIsNotCached) {
  BlockDevice dev(64);
  BufferCache cache(&dev, 16);
  dev.InjectReadFaults(1);
  auto r = cache.Get(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEIO);
  // The failed fill must not have left a zero-filled buffer behind.
  EXPECT_EQ(cache.cached_blocks(), 0u);
  auto ok = cache.Get(3);
  ASSERT_OK(ok);
}

TEST(BufferCacheFaultTest, FailedWritebackKeepsBufferDirty) {
  BlockDevice dev(64);
  BufferCache cache(&dev, 16);
  {
    auto buf = cache.GetForOverwrite(5);
    ASSERT_OK(buf);
    buf->data()[0] = 0xAB;
    buf->MarkDirty();
  }
  dev.InjectWriteFaults(1);
  EXPECT_FALSE(cache.Sync().ok());
  // Dirty data survives the failed write-back and lands on the next sync.
  ASSERT_OK(cache.Sync());
  cache.Drop();
  auto back = cache.Get(5);
  ASSERT_OK(back);
  EXPECT_EQ(back->data()[0], 0xAB);
}

TEST(BlockDeviceFaultTest, InjectedFaultsCountDownAndLeaveDataIntact) {
  BlockDevice dev(8);
  Block b{};
  b[0] = 0x42;
  ASSERT_OK(dev.Write(1, b));
  dev.InjectWriteFaults(2);
  b[0] = 0x99;
  EXPECT_FALSE(dev.Write(1, b).ok());
  EXPECT_FALSE(dev.Write(1, b).ok());
  EXPECT_EQ(dev.io_errors(), 2u);
  Block out{};
  ASSERT_OK(dev.Read(1, &out));
  EXPECT_EQ(out[0], 0x42);  // both faulted writes were dropped
  ASSERT_OK(dev.Write(1, b));  // injection exhausted
  ASSERT_OK(dev.Read(1, &out));
  EXPECT_EQ(out[0], 0x99);
}

}  // namespace
}  // namespace dircache
