// File-descriptor table and open-file semantics: fd reuse, per-fd offsets,
// independent descriptions, pread/pwrite, append, dirfd lifetime across
// renames, and fd exhaustion behaviour.
#include "tests/test_util.h"

namespace dircache {
namespace {

class FileTableTest : public ::testing::TestWithParam<bool> {
 protected:
  FileTableTest()
      : world_(GetParam() ? CacheConfig::Optimized()
                          : CacheConfig::Baseline()) {}
  Task& T() { return *world_.root; }
  TestWorld world_;
};

TEST_P(FileTableTest, FdNumbersAreReusedLowestFirst) {
  auto a = T().Open("/a", kOCreat | kOWrite);
  auto b = T().Open("/b", kOCreat | kOWrite);
  auto c = T().Open("/c", kOCreat | kOWrite);
  ASSERT_OK(a);
  ASSERT_OK(b);
  ASSERT_OK(c);
  EXPECT_EQ(T().open_files(), 3u);
  ASSERT_OK(T().Close(*b));
  auto d = T().Open("/d", kOCreat | kOWrite);
  ASSERT_OK(d);
  EXPECT_EQ(*d, *b);  // lowest free slot reused
  EXPECT_ERR(T().Close(999), Errno::kEBADF);
  EXPECT_ERR(T().Close(-1), Errno::kEBADF);
  ASSERT_OK(T().Close(*a));
  EXPECT_ERR(T().Close(*a), Errno::kEBADF);  // double close
}

TEST_P(FileTableTest, IndependentOffsetsPerDescription) {
  auto w = T().Open("/data", kOCreat | kOWrite);
  ASSERT_OK(w);
  ASSERT_OK(T().WriteFd(*w, "abcdefghij"));
  ASSERT_OK(T().Close(*w));
  auto r1 = T().Open("/data", kORead);
  auto r2 = T().Open("/data", kORead);
  ASSERT_OK(r1);
  ASSERT_OK(r2);
  std::string buf;
  ASSERT_OK(T().ReadFd(*r1, 3, &buf));
  EXPECT_EQ(buf, "abc");
  ASSERT_OK(T().ReadFd(*r2, 5, &buf));
  EXPECT_EQ(buf, "abcde");  // r2 unaffected by r1's reads
  ASSERT_OK(T().ReadFd(*r1, 3, &buf));
  EXPECT_EQ(buf, "def");
}

TEST_P(FileTableTest, PreadPwriteIgnoreOffset) {
  auto fd = T().Open("/p", kOCreat | kORdWr);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "0000000000"));
  ASSERT_OK(T().Pwrite(*fd, 4, "XY"));
  std::string buf;
  ASSERT_OK(T().Pread(*fd, 3, 4, &buf));
  EXPECT_EQ(buf, "0XY0");
  // The fd offset is untouched by pread/pwrite.
  ASSERT_OK(T().Lseek(*fd, 0));
  ASSERT_OK(T().ReadFd(*fd, 10, &buf));
  EXPECT_EQ(buf, "0000XY0000");
}

TEST_P(FileTableTest, ReadRequiresReadWriteRequiresWrite) {
  auto ro = T().Open("/rw", kOCreat | kORead);
  ASSERT_OK(ro);
  EXPECT_ERR(T().WriteFd(*ro, "x"), Errno::kEBADF);
  auto wo = T().Open("/rw", kOWrite);
  ASSERT_OK(wo);
  std::string buf;
  EXPECT_ERR(T().ReadFd(*wo, 1, &buf), Errno::kEBADF);
}

TEST_P(FileTableTest, AppendAlwaysWritesAtEnd) {
  auto fd = T().Open("/log", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "first"));
  ASSERT_OK(T().Close(*fd));
  auto a1 = T().Open("/log", kOWrite | kOAppend);
  ASSERT_OK(a1);
  ASSERT_OK(T().Lseek(*a1, 0));            // ignored by append writes
  ASSERT_OK(T().WriteFd(*a1, "+second"));
  auto st = T().Statx(kAtFdCwd, "/log", 0);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 12u);
  std::string buf;
  auto r = T().Open("/log", kORead);
  ASSERT_OK(r);
  ASSERT_OK(T().ReadFd(*r, 64, &buf));
  EXPECT_EQ(buf, "first+second");
}

TEST_P(FileTableTest, DirfdSurvivesRenameOfItsDirectory) {
  ASSERT_OK(T().Mkdir("/olddir"));
  auto fd = T().Open("/olddir/inside", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  auto dfd = T().Open("/olddir", kORead | kODirectory);
  ASSERT_OK(dfd);
  ASSERT_OK(T().Rename("/olddir", "/newdir"));
  // The open handle tracks the dentry, not the name (POSIX).
  EXPECT_OK(T().FstatAt(*dfd, "inside", 0));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/olddir/inside", 0), Errno::kENOENT);
  EXPECT_OK(T().Statx(kAtFdCwd, "/newdir/inside", 0));
}

TEST_P(FileTableTest, ForkDoesNotShareFdTable) {
  auto fd = T().Open("/mine", kOCreat | kOWrite);
  ASSERT_OK(fd);
  TaskPtr child = T().Fork();
  // Our Fork models a fresh process image without inherited descriptors
  // (exec-like); the child's table starts empty.
  EXPECT_EQ(child->open_files(), 0u);
  EXPECT_ERR(child->Close(*fd), Errno::kEBADF);
  ASSERT_OK(T().Close(*fd));
}

TEST_P(FileTableTest, TruncateViaOpenFlagAndSyscall) {
  auto fd = T().Open("/t", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "0123456789"));
  ASSERT_OK(T().Close(*fd));
  auto tr = T().Open("/t", kOWrite | kOTrunc);
  ASSERT_OK(tr);
  auto st = T().Statx(kAtFdCwd, "/t", 0);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 0u);
  ASSERT_OK(T().Close(*tr));
  EXPECT_ERR(T().Truncate("/nonexistent", 5), Errno::kENOENT);
  ASSERT_OK(T().Mkdir("/adir"));
  EXPECT_ERR(T().Truncate("/adir", 0), Errno::kEISDIR);
}

INSTANTIATE_TEST_SUITE_P(BothKernels, FileTableTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Optimized" : "Baseline";
                         });

}  // namespace
}  // namespace dircache
