// On-disk consistency: fsck must report CLEAN after arbitrary workloads,
// and must detect injected corruption.
#include "src/storage/fsck.h"
#include "src/util/rng.h"
#include "src/workload/apps.h"
#include "src/workload/tree_gen.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

std::shared_ptr<DiskFs> SmallDiskFs() {
  DiskFsOptions opt;
  opt.num_blocks = 1 << 14;
  opt.max_inodes = 1 << 12;
  return std::make_shared<DiskFs>(opt);
}

TEST(FsckTest, FreshFileSystemIsClean) {
  auto fs = SmallDiskFs();
  FsckReport report = RunFsck(*fs);
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_EQ(report.inodes_checked, 1u);  // the root
}

TEST(FsckTest, CleanAfterStructuredWorkload) {
  auto fs = SmallDiskFs();
  TestWorld w(CacheConfig::Optimized(), fs);
  TreeSpec spec;
  spec.approx_files = 300;
  auto tree = GenerateSourceTree(*w.root, "/src", spec);
  ASSERT_OK(tree);
  // Links, renames, symlinks, deletions on top.
  ASSERT_OK(w.root->Link(tree->files[0], "/hardlink"));
  ASSERT_OK(w.root->Rename(tree->files[1], "/renamed"));
  ASSERT_OK(w.root->Symlink("/renamed", "/sym"));
  ASSERT_OK(w.root->Unlink(tree->files[2]));
  (void)RunTarExtract(*w.root, *tree, "/copy");
  (void)RunRmRecursive(*w.root, "/copy");
  FsckReport report = RunFsck(*fs);
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_GT(report.inodes_checked, 300u);
  EXPECT_GT(report.directories_checked, 5u);
}

TEST(FsckTest, CleanAfterRandomizedChurn) {
  auto fs = SmallDiskFs();
  TestWorld w(CacheConfig::Optimized(), fs);
  Task& t = *w.root;
  Rng rng(77);
  std::vector<std::string> dirs{"/"};
  std::vector<std::string> files;
  for (int op = 0; op < 3000; ++op) {
    switch (rng.Below(6)) {
      case 0: {
        std::string d = dirs[rng.Below(dirs.size())] + "/d" +
                        std::to_string(rng.Below(40));
        if (t.Mkdir(d).ok()) {
          dirs.push_back(d);
        }
        break;
      }
      case 1: {
        std::string f = dirs[rng.Below(dirs.size())] + "/f" +
                        std::to_string(rng.Below(80));
        auto fd = t.Open(f, kOCreat | kOWrite);
        if (fd.ok()) {
          (void)t.WriteFd(*fd, std::string(rng.Below(9000), 'x'));
          (void)t.Close(*fd);
          files.push_back(f);
        }
        break;
      }
      case 2:
        if (!files.empty()) {
          size_t i = rng.Below(files.size());
          if (t.Unlink(files[i]).ok()) {
            files.erase(files.begin() + static_cast<long>(i));
          }
        }
        break;
      case 3:
        if (!files.empty()) {
          std::string to = dirs[rng.Below(dirs.size())] + "/r" +
                           std::to_string(rng.Below(80));
          size_t i = rng.Below(files.size());
          if (t.Rename(files[i], to).ok()) {
            files[i] = to;
          }
        }
        break;
      case 4:
        if (!files.empty()) {
          std::string link = dirs[rng.Below(dirs.size())] + "/h" +
                             std::to_string(rng.Below(80));
          if (t.Link(files[rng.Below(files.size())], link).ok()) {
            files.push_back(link);
          }
        }
        break;
      case 5:
        if (dirs.size() > 1) {
          (void)t.Rmdir(dirs[rng.Below(dirs.size() - 1) + 1]);
          // (only removed from `dirs` lazily; failed rmdir is fine)
        }
        break;
    }
  }
  FsckReport report = RunFsck(*fs);
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST(FsckTest, DetectsInjectedBitmapCorruption) {
  auto fs = SmallDiskFs();
  TestWorld w(CacheConfig::Baseline(), fs);
  auto fd = w.root->Open("/victim", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->WriteFd(*fd, "data"));
  ASSERT_OK(w.root->Close(*fd));
  ASSERT_TRUE(RunFsck(*fs).clean());
  // Flip a random unallocated inode bit: fsck must flag the leak.
  {
    auto buf = fs->buffer_cache().Get(1);  // inode bitmap block
    ASSERT_OK(buf);
    buf->data()[64] |= 0x01;  // inode 512: allocated but unreachable
    buf->MarkDirty();
  }
  FsckReport report = RunFsck(*fs);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.Summary().find("unreachable"), std::string::npos)
      << report.Summary();
}

TEST(FsckTest, DetectsChecksumCorruption) {
  auto fs = SmallDiskFs();
  TestWorld w(CacheConfig::Baseline(), fs);
  auto fd = w.root->Open("/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  // Find the root directory's dirent block and flip a byte in it.
  // (The root dir's first data block is the first allocated data block.)
  bool corrupted = false;
  for (uint64_t b = 0; b < fs->device().num_blocks() && !corrupted; ++b) {
    auto buf = fs->buffer_cache().Get(b);
    if (!buf.ok()) {
      continue;
    }
    // Look for the dirent magic tail.
    uint32_t magic;
    std::memcpy(&magic, buf->data() + kBlockSize - 4, 4);
    if (magic == 0xde200de2u) {
      buf->data()[0] ^= 0xff;
      buf->MarkDirty();
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  FsckReport report = RunFsck(*fs);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.Summary().find("checksum"), std::string::npos)
      << report.Summary();
}

}  // namespace
}  // namespace dircache
