// Properties of the path signature scheme (§3.3): determinism, keyedness,
// prefix-resume equivalence, length separation, and index distribution.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/core/signature.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace dircache {
namespace {

TEST(HashTest, DeterministicForSameKey) {
  PathHashKey key(1234);
  PathHasher hasher(&key);
  auto sig = [&](std::string_view s) {
    HashState st = hasher.Init();
    EXPECT_TRUE(hasher.Update(st, s));
    return hasher.Finalize(st);
  };
  EXPECT_EQ(sig("/usr/include/stdio.h"), sig("/usr/include/stdio.h"));
  EXPECT_NE(sig("/usr/include/stdio.h"), sig("/usr/include/stdlib.h"));
}

TEST(HashTest, DifferentKeysDisagree) {
  // The signature is keyed per boot: the same path hashes differently
  // under different keys (blocks offline collision search, §3.3).
  PathHashKey k1(1);
  PathHashKey k2(2);
  PathHasher h1(&k1);
  PathHasher h2(&k2);
  HashState s1 = h1.Init();
  HashState s2 = h2.Init();
  ASSERT_TRUE(h1.Update(s1, "/etc/passwd"));
  ASSERT_TRUE(h2.Update(s2, "/etc/passwd"));
  EXPECT_NE(h1.Finalize(s1), h2.Finalize(s2));
}

TEST(HashTest, SplitUpdatesEqualWholeUpdates) {
  // Resumable state: hashing in arbitrary chunks gives the same result —
  // the property that lets children extend the parent's stored state.
  PathHashKey key(99);
  PathHasher hasher(&key);
  const std::string path = "/home/alice/projects/dircache/src/vfs/walk.cc";
  HashState whole = hasher.Init();
  ASSERT_TRUE(hasher.Update(whole, path));
  Signature expected = hasher.Finalize(whole);
  for (size_t split1 = 1; split1 < path.size(); split1 += 3) {
    for (size_t split2 = split1; split2 < path.size(); split2 += 7) {
      HashState st = hasher.Init();
      ASSERT_TRUE(hasher.Update(st, path.substr(0, split1)));
      ASSERT_TRUE(hasher.Update(st, path.substr(split1, split2 - split1)));
      ASSERT_TRUE(hasher.Update(st, path.substr(split2)));
      EXPECT_EQ(hasher.Finalize(st), expected)
          << "splits at " << split1 << "," << split2;
    }
  }
}

TEST(HashTest, FinalizeDoesNotConsumeState) {
  PathHashKey key(5);
  PathHasher hasher(&key);
  HashState st = hasher.Init();
  ASSERT_TRUE(hasher.Update(st, "/a"));
  Signature mid = hasher.Finalize(st);
  ASSERT_TRUE(hasher.Update(st, "/b"));
  Signature full = hasher.Finalize(st);
  EXPECT_NE(mid, full);
  // Recompute /a/b from scratch; must match the resumed value.
  HashState st2 = hasher.Init();
  ASSERT_TRUE(hasher.Update(st2, "/a/b"));
  EXPECT_EQ(hasher.Finalize(st2), full);
}

TEST(HashTest, PrefixAndPaddingSeparation) {
  // Zero-padding and prefix relationships must not collide: "/ab" vs
  // "/ab\0..." style confusions are prevented by length folding.
  PathHashKey key(7);
  PathHasher hasher(&key);
  auto sig = [&](std::string_view s) {
    HashState st = hasher.Init();
    EXPECT_TRUE(hasher.Update(st, s));
    return hasher.Finalize(st);
  };
  EXPECT_NE(sig("/ab"), sig(std::string("/ab\0", 4)));
  EXPECT_NE(sig("/abcd"), sig("/abcd/efg"));
  EXPECT_NE(sig(""), sig(std::string("\0", 1)));
}

TEST(HashTest, NoCollisionsInLargeSample) {
  PathHashKey key(42);
  PathHasher hasher(&key);
  Rng rng(3);
  std::set<std::array<uint64_t, 4>> seen;
  for (int i = 0; i < 200000; ++i) {
    std::string path = "/d" + std::to_string(rng.Below(50));
    path += "/f" + std::to_string(i);
    HashState st = hasher.Init();
    ASSERT_TRUE(hasher.Update(st, path));
    Signature sig = hasher.Finalize(st);
    EXPECT_TRUE(seen.insert(sig.words).second) << "collision at " << path;
  }
}

TEST(HashTest, BucketIndexIsReasonablyUniform) {
  PathHashKey key(11);
  PathHasher hasher(&key);
  std::array<int, 64> histogram{};
  constexpr int kSamples = 64 * 1024;
  for (int i = 0; i < kSamples; ++i) {
    HashState st = hasher.Init();
    std::string path = "/x/file" + std::to_string(i);
    ASSERT_TRUE(hasher.Update(st, path));
    histogram[hasher.Finalize(st).bucket % 64] += 1;
  }
  // Every 64th of the space should hold ~1024 +- 40%.
  for (int count : histogram) {
    EXPECT_GT(count, 1024 * 6 / 10);
    EXPECT_LT(count, 1024 * 14 / 10);
  }
}

TEST(HashTest, RejectsOverlongPaths) {
  PathHashKey key(1);
  PathHasher hasher(&key);
  HashState st = hasher.Init();
  std::string big(PathHashKey::kMaxPathLen, 'x');
  EXPECT_TRUE(hasher.Update(st, big));
  EXPECT_FALSE(hasher.Update(st, "y"));  // would exceed PATH_MAX
}

TEST(PathSignerTest, AppendComponentMatchesSlashJoin) {
  PathSigner signer(77);
  HashState st = signer.RootState();
  ASSERT_TRUE(signer.AppendComponent(st, "usr"));
  ASSERT_TRUE(signer.AppendComponent(st, "include"));
  ASSERT_TRUE(signer.AppendComponent(st, "stdio.h"));
  Signature via_components = signer.Finalize(st);

  // The canonical string is "/usr/include/stdio.h".
  PathHashKey key(77);
  PathHasher hasher(&key);
  HashState st2 = hasher.Init();
  ASSERT_TRUE(hasher.Update(st2, "/usr/include/stdio.h"));
  EXPECT_EQ(hasher.Finalize(st2), via_components);
}

TEST(PathSignerTest, LongComponentTakesSlowPathConsistently) {
  PathSigner signer(13);
  std::string longname(200, 'n');
  HashState st = signer.RootState();
  ASSERT_TRUE(signer.AppendComponent(st, longname));
  PathHashKey key(13);
  PathHasher hasher(&key);
  HashState st2 = hasher.Init();
  ASSERT_TRUE(hasher.Update(st2, "/" + longname));
  EXPECT_EQ(hasher.Finalize(st2), signer.Finalize(st));
}

TEST(HashBytes64Test, SeedSensitivity) {
  EXPECT_NE(HashBytes64(1, "name"), HashBytes64(2, "name"));
  EXPECT_EQ(HashBytes64(1, "name"), HashBytes64(1, "name"));
  EXPECT_NE(HashBytes64(1, "name"), HashBytes64(1, "namf"));
}

}  // namespace
}  // namespace dircache
