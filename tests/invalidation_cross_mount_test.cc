// Regression tests for the two §3.2/§4.3 interaction bugs the randomized
// equivalence oracle uncovered: subtree invalidation must cross mount
// boundaries, and rename must refuse busy mountpoints.
#include "tests/test_util.h"

namespace dircache {
namespace {

class CrossMountTest : public ::testing::Test {
 protected:
  CrossMountTest() : world_(CacheConfig::Optimized()) {}
  Task& T() { return *world_.root; }
  TestWorld world_;
};

TEST_F(CrossMountTest, PermissionChangeAboveMountpointInvalidatesInside) {
  ASSERT_OK(T().Mkdir("/outer", 0755));
  ASSERT_OK(T().Mkdir("/outer/mnt"));
  auto fs = std::make_shared<MemFs>();
  ASSERT_OK(fs->Create(MemFs::kRootIno, "inside", FileType::kRegular, 0644,
                       0, 0));
  ASSERT_OK(T().Mount("/outer/mnt", fs));

  TaskPtr user = world_.UserTask(1000, 1000);
  ASSERT_OK(user->Statx(kAtFdCwd, "/outer/mnt/inside", 0));
  ASSERT_OK(user->Statx(kAtFdCwd, "/outer/mnt/inside", 0));  // fastpath warm
  // Revoke search permission ABOVE the mountpoint: cached prefix checks
  // for dentries INSIDE the mounted FS must die with it.
  ASSERT_OK(T().Chmod("/outer", 0700));
  EXPECT_ERR(user->Statx(kAtFdCwd, "/outer/mnt/inside", 0), Errno::kEACCES);
  // Missing-name results inside the mount are equally protected.
  ASSERT_OK(T().Chmod("/outer", 0755));
  EXPECT_ERR(user->Statx(kAtFdCwd, "/outer/mnt/nothing", 0), Errno::kENOENT);
  EXPECT_ERR(user->Statx(kAtFdCwd, "/outer/mnt/nothing", 0), Errno::kENOENT);
  ASSERT_OK(T().Chmod("/outer", 0700));
  EXPECT_ERR(user->Statx(kAtFdCwd, "/outer/mnt/nothing", 0), Errno::kEACCES);
}

TEST_F(CrossMountTest, RootPermissionChangeReachesEveryMount) {
  ASSERT_OK(T().Mkdir("/m1"));
  auto fs = std::make_shared<MemFs>();
  ASSERT_OK(fs->Create(MemFs::kRootIno, "f", FileType::kRegular, 0644, 0,
                       0));
  ASSERT_OK(T().Mount("/m1", fs));
  TaskPtr user = world_.UserTask(1000, 1000);
  ASSERT_OK(user->Statx(kAtFdCwd, "/m1/f", 0));
  ASSERT_OK(user->Statx(kAtFdCwd, "/m1/f", 0));
  // chmod of "/" itself (via the dot-dot alias the oracle used).
  ASSERT_OK(T().Chmod("/..", 0700));
  EXPECT_ERR(user->Statx(kAtFdCwd, "/m1/f", 0), Errno::kEACCES);
  ASSERT_OK(T().Chmod("/", 0755));
  EXPECT_OK(user->Statx(kAtFdCwd, "/m1/f", 0));
}

TEST_F(CrossMountTest, BindMountCycleDoesNotHangInvalidation) {
  // Bind "/" inside its own subtree: the invalidation walk crosses into
  // the bind and must terminate via its visited set.
  ASSERT_OK(T().Mkdir("/a"));
  ASSERT_OK(T().Mkdir("/a/loop"));
  ASSERT_OK(T().BindMount("/", "/a/loop"));
  ASSERT_OK(T().Statx(kAtFdCwd, "/a/loop/a/loop", 0));
  // Mounts are keyed by (mount, dentry), so the inner "loop" is the plain
  // underlying (empty) directory — nothing is mounted there (Linux
  // semantics for a recursive-looking bind of "/").
  EXPECT_ERR(T().Statx(kAtFdCwd, "/a/loop/a/loop/a", 0), Errno::kENOENT);
  ASSERT_OK(T().Chmod("/a", 0700));  // invalidates; must not loop forever
  ASSERT_OK(T().Chmod("/a", 0755));
  EXPECT_OK(T().Statx(kAtFdCwd, "/a/loop/a", 0));
}

TEST_F(CrossMountTest, ClonedNamespaceSeesInvalidationFromOriginal) {
  // A cloned mount namespace gets its own DLHT, but dentries (and their
  // version counters) are shared — a permission change made in the original
  // namespace must defeat fastpath hits in the clone.
  ASSERT_OK(T().Mkdir("/priv", 0755));
  ASSERT_OK(T().Mkdir("/priv/sub", 0755));
  auto fd = T().Open("/priv/sub/f", kOCreat | kOWrite, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));

  TaskPtr user = world_.UserTask(1000, 1000);
  ASSERT_OK(user->UnshareMountNs());
  ASSERT_OK(user->Statx(kAtFdCwd, "/priv/sub/f", 0));
  ASSERT_OK(user->Statx(kAtFdCwd, "/priv/sub/f", 0));  // warm the clone's DLHT + PCC
  ASSERT_OK(T().Chmod("/priv", 0700));       // in the ORIGINAL namespace
  EXPECT_ERR(user->Statx(kAtFdCwd, "/priv/sub/f", 0), Errno::kEACCES);
  ASSERT_OK(T().Chmod("/priv", 0755));
  EXPECT_OK(user->Statx(kAtFdCwd, "/priv/sub/f", 0));

  // And the reverse direction: a root task that unshared first still
  // invalidates walks in the original namespace.
  TaskPtr admin = T().Fork();
  ASSERT_OK(admin->UnshareMountNs());
  TaskPtr orig_user = world_.UserTask(1000, 1000);
  ASSERT_OK(orig_user->Statx(kAtFdCwd, "/priv/sub/f", 0));
  ASSERT_OK(orig_user->Statx(kAtFdCwd, "/priv/sub/f", 0));
  ASSERT_OK(admin->Chmod("/priv/sub", 0700));
  EXPECT_ERR(orig_user->Statx(kAtFdCwd, "/priv/sub/f", 0), Errno::kEACCES);
}

TEST_F(CrossMountTest, RenameOfOrOntoMountpointIsBusy) {
  ASSERT_OK(T().Mkdir("/mp"));
  ASSERT_OK(T().Mkdir("/plain"));
  ASSERT_OK(T().Mount("/mp", std::make_shared<MemFs>()));
  EXPECT_ERR(T().Rename("/mp", "/elsewhere"), Errno::kEBUSY);
  EXPECT_ERR(T().Rename("/plain", "/mp"), Errno::kEBUSY);
  // After unmounting, both directions work again.
  ASSERT_OK(T().Umount("/mp"));
  ASSERT_OK(T().Rename("/plain", "/mp"));
  EXPECT_OK(T().Rename("/mp", "/elsewhere"));
}

}  // namespace
}  // namespace dircache
