// Permission semantics: the DAC matrix, root privileges, sticky bits,
// group membership, and the two sample LSMs — on both kernels (permission
// outcomes must be config-independent).
#include "tests/test_util.h"

namespace dircache {
namespace {

class PermissionTest : public ::testing::TestWithParam<bool> {
 protected:
  PermissionTest()
      : world_(GetParam() ? CacheConfig::Optimized()
                          : CacheConfig::Baseline()) {}
  Task& Root() { return *world_.root; }
  TestWorld world_;
};

TEST_P(PermissionTest, OwnerGroupOtherBits) {
  ASSERT_OK(Root().Mkdir("/data", 0755));
  auto fd = Root().Open("/data/file", kOCreat | kOWrite, 0640);
  ASSERT_OK(fd);
  ASSERT_OK(Root().Close(*fd));
  ASSERT_OK(Root().Chown("/data/file", 1000, 2000));

  TaskPtr owner = world_.UserTask(1000, 999);
  TaskPtr groupie = world_.UserTask(1500, 2000);
  TaskPtr groupie2 = world_.UserTask(1501, 50, {2000});  // supplementary
  TaskPtr other = world_.UserTask(1600, 1600);

  EXPECT_OK(owner->Open("/data/file", kORdWr));
  EXPECT_OK(groupie->Open("/data/file", kORead));
  EXPECT_ERR(groupie->Open("/data/file", kOWrite), Errno::kEACCES);
  EXPECT_OK(groupie2->Open("/data/file", kORead));
  EXPECT_ERR(other->Open("/data/file", kORead), Errno::kEACCES);
  // access() agrees.
  EXPECT_OK(other->Access("/data/file", 0));  // F_OK: existence
  EXPECT_ERR(other->Access("/data/file", kMayRead), Errno::kEACCES);
}

TEST_P(PermissionTest, SearchPermissionGatesTraversal) {
  ASSERT_OK(Root().Mkdir("/gate", 0711));  // x but not r for others
  auto fd = Root().Open("/gate/known", kOCreat | kOWrite, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(Root().Close(*fd));
  TaskPtr user = world_.UserTask(1000, 1000);
  // Search permission allows lookup of a known name...
  EXPECT_OK(user->Statx(kAtFdCwd, "/gate/known", 0));
  // ...but not enumeration: read permission is required to open the
  // directory for listing.
  EXPECT_ERR(user->Open("/gate", kORead | kODirectory), Errno::kEACCES);
  // Remove search permission entirely: lookup now fails.
  ASSERT_OK(Root().Chmod("/gate", 0700));
  EXPECT_ERR(user->Statx(kAtFdCwd, "/gate/known", 0), Errno::kEACCES);
}

TEST_P(PermissionTest, RootOverridesDacExceptExec) {
  ASSERT_OK(Root().Mkdir("/locked", 0000));
  auto fd = Root().Open("/locked/f", kOCreat | kOWrite, 0000);
  ASSERT_OK(fd);
  ASSERT_OK(Root().Close(*fd));
  // Root reads and writes anything.
  EXPECT_OK(Root().Open("/locked/f", kORdWr));
  EXPECT_OK(Root().Statx(kAtFdCwd, "/locked/f", 0));
  // Exec of a file with no x bits is denied even for root.
  EXPECT_ERR(Root().Access("/locked/f", kMayExec), Errno::kEACCES);
  // Search of a directory is always allowed for root.
  EXPECT_OK(Root().Access("/locked", kMayExec));
}

TEST_P(PermissionTest, StickyDirectoryProtectsEntries) {
  ASSERT_OK(Root().Mkdir("/tmp", 01777));
  TaskPtr alice = world_.UserTask(1000, 1000);
  TaskPtr bob = world_.UserTask(1001, 1001);
  auto fd = alice->Open("/tmp/alices", kOCreat | kOWrite, 0666);
  ASSERT_OK(fd);
  ASSERT_OK(alice->Close(*fd));
  // Bob may not unlink or rename Alice's file in a sticky dir.
  EXPECT_ERR(bob->Unlink("/tmp/alices"), Errno::kEPERM);
  EXPECT_ERR(bob->Rename("/tmp/alices", "/tmp/stolen"), Errno::kEPERM);
  // Alice (the owner) may.
  EXPECT_OK(alice->Unlink("/tmp/alices"));
}

TEST_P(PermissionTest, ChmodChownRequireOwnership) {
  auto fd = Root().Open("/owned", kOCreat | kOWrite, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(Root().Close(*fd));
  ASSERT_OK(Root().Chown("/owned", 1000, 1000));
  TaskPtr owner = world_.UserTask(1000, 1000, {3000});
  TaskPtr stranger = world_.UserTask(1001, 1001);
  EXPECT_ERR(stranger->Chmod("/owned", 0777), Errno::kEPERM);
  EXPECT_OK(owner->Chmod("/owned", 0600));
  // Owner may change group only to one of its groups.
  EXPECT_OK(owner->Chown("/owned", 1000, 3000));
  EXPECT_ERR(owner->Chown("/owned", 1000, 4000), Errno::kEPERM);
  EXPECT_ERR(owner->Chown("/owned", 1002, 3000), Errno::kEPERM);
  EXPECT_OK(Root().Chown("/owned", 1002, 4000));  // root may do anything
}

TEST_P(PermissionTest, LabelLsmEnforcesAndInheritsLabels) {
  auto lsm = std::make_unique<LabelLsm>();
  LabelLsm* rules = lsm.get();
  world_.kernel->security().AddModule(std::move(lsm));
  ASSERT_OK(Root().Mkdir("/classified"));
  ASSERT_OK(Root().SetSecurityLabel("/classified", "topsecret"));
  // New children inherit the parent label.
  auto fd = Root().Open("/classified/doc", kOCreat | kOWrite, 0777);
  ASSERT_OK(fd);
  ASSERT_OK(Root().Close(*fd));
  ASSERT_OK(Root().Chmod("/classified", 0777));

  TaskPtr agent = world_.UserTask(1000, 1000, {}, "agent_t");
  // DAC would allow, the LSM vetoes (no rule).
  EXPECT_ERR(agent->Open("/classified/doc", kORead), Errno::kEACCES);
  rules->Allow("agent_t", "topsecret", kMayRead | kMayExec);
  ASSERT_OK(Root().SetSecurityLabel("/classified", "topsecret"));  // resync
  EXPECT_OK(agent->Open("/classified/doc", kORead));
  EXPECT_ERR(agent->Open("/classified/doc", kOWrite), Errno::kEACCES);
  // Unlabeled subjects are unconstrained by this module.
  TaskPtr plain = world_.UserTask(1001, 1001);
  EXPECT_OK(plain->Open("/classified/doc", kORead));
}

TEST_P(PermissionTest, PathLsmProfilesConfine) {
  auto lsm = std::make_unique<PathLsm>();
  PathLsm* profiles = lsm.get();
  world_.kernel->security().AddModule(std::move(lsm));
  ASSERT_OK(Root().Mkdir("/srv", 0777));
  ASSERT_OK(Root().Mkdir("/srv/www", 0777));
  ASSERT_OK(Root().Mkdir("/home", 0777));
  auto fd = Root().Open("/srv/www/index.html", kOCreat | kOWrite, 0666);
  ASSERT_OK(fd);
  ASSERT_OK(Root().Close(*fd));
  fd = Root().Open("/home/secret", kOCreat | kOWrite, 0666);
  ASSERT_OK(fd);
  ASSERT_OK(Root().Close(*fd));

  profiles->SetProfile("httpd", {PathLsm::Rule{"/srv", kMayRead | kMayExec},
                                 PathLsm::Rule{"/", kMayExec}});
  TaskPtr httpd = world_.UserTask(33, 33, {}, "httpd");
  EXPECT_OK(httpd->Open("/srv/www/index.html", kORead));
  EXPECT_ERR(httpd->Open("/srv/www/index.html", kOWrite), Errno::kEACCES);
  EXPECT_ERR(httpd->Open("/home/secret", kORead), Errno::kEACCES);
}

INSTANTIATE_TEST_SUITE_P(BothKernels, PermissionTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Optimized" : "Baseline";
                         });

}  // namespace
}  // namespace dircache
