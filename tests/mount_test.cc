// Mount points, bind mounts (aliases), pseudo file systems, namespaces,
// and chroot (§4.3).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dircache {
namespace {

class MountTest : public ::testing::TestWithParam<bool> {
 protected:
  MountTest()
      : world_(GetParam() ? CacheConfig::Optimized()
                          : CacheConfig::Baseline()) {}
  Task& T() { return *world_.root; }
  TestWorld world_;
};

TEST_P(MountTest, MountAndCrossInto) {
  ASSERT_OK(T().Mkdir("/mnt"));
  auto fs = std::make_shared<MemFs>();
  ASSERT_OK(fs->Create(MemFs::kRootIno, "inside", FileType::kRegular, 0644,
                       0, 0));
  ASSERT_OK(T().Mount("/mnt", fs));
  auto st = T().Statx(kAtFdCwd, "/mnt/inside", 0);
  ASSERT_OK(st);
  EXPECT_OK(T().Statx(kAtFdCwd, "/mnt/inside", 0));  // repeat: fastpath crossing
  // The mount root's stat shows the mounted FS, not the covered dir.
  auto root_st = T().Statx(kAtFdCwd, "/mnt", 0);
  ASSERT_OK(root_st);
  EXPECT_EQ(root_st->ino, MemFs::kRootIno);
  EXPECT_NE(root_st->dev, 1u);  // different superblock than the root FS
}

TEST_P(MountTest, MountShadowsCoveredContents) {
  ASSERT_OK(T().Mkdir("/cover"));
  auto fd = T().Open("/cover/original", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Statx(kAtFdCwd, "/cover/original", 0));
  ASSERT_OK(T().Statx(kAtFdCwd, "/cover/original", 0));  // warm the caches
  ASSERT_OK(T().Mount("/cover", std::make_shared<MemFs>()));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/cover/original", 0), Errno::kENOENT);
  // Unmount restores visibility.
  ASSERT_OK(T().Umount("/cover"));
  EXPECT_OK(T().Statx(kAtFdCwd, "/cover/original", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/cover/original", 0));
}

TEST_P(MountTest, ReadOnlyMountRejectsWrites) {
  ASSERT_OK(T().Mkdir("/ro"));
  MountFlags flags;
  flags.read_only = true;
  auto fs = std::make_shared<MemFs>();
  ASSERT_OK(fs->Create(MemFs::kRootIno, "f", FileType::kRegular, 0644, 0,
                       0));
  ASSERT_OK(T().Mount("/ro", fs, flags));
  EXPECT_ERR(T().Open("/ro/new", kOCreat | kOWrite), Errno::kEROFS);
  EXPECT_ERR(T().Open("/ro/f", kOWrite), Errno::kEROFS);
  EXPECT_ERR(T().Unlink("/ro/f"), Errno::kEROFS);
  EXPECT_ERR(T().Mkdir("/ro/d"), Errno::kEROFS);
  EXPECT_OK(T().Open("/ro/f", kORead));
}

TEST_P(MountTest, BindMountAliasesContent) {
  ASSERT_OK(T().Mkdir("/data"));
  ASSERT_OK(T().Mkdir("/view"));
  auto fd = T().Open("/data/file", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "shared"));
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().BindMount("/data", "/view"));
  auto st1 = T().Statx(kAtFdCwd, "/data/file", 0);
  auto st2 = T().Statx(kAtFdCwd, "/view/file", 0);
  ASSERT_OK(st1);
  ASSERT_OK(st2);
  EXPECT_EQ(st1->ino, st2->ino);
  // Alternate between alias paths: the most-recent-path rule (§4.3) must
  // keep both correct.
  for (int i = 0; i < 4; ++i) {
    EXPECT_OK(T().Statx(kAtFdCwd, i % 2 != 0 ? "/data/file" : "/view/file", 0));
  }
  // A write through the alias is visible through the origin.
  fd = T().Open("/view/file", kOWrite | kOTrunc);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "updated!"));
  ASSERT_OK(T().Close(*fd));
  auto st3 = T().Statx(kAtFdCwd, "/data/file", 0);
  ASSERT_OK(st3);
  EXPECT_EQ(st3->size, 8u);
}

TEST_P(MountTest, StackedMountsShadowAndUnwind) {
  ASSERT_OK(T().Mkdir("/m1"));
  auto fs1 = std::make_shared<MemFs>();
  auto fs2 = std::make_shared<MemFs>();
  ASSERT_OK(fs1->Create(MemFs::kRootIno, "one", FileType::kRegular, 0644, 0,
                        0));
  ASSERT_OK(fs2->Create(MemFs::kRootIno, "two", FileType::kRegular, 0644, 0,
                        0));
  ASSERT_OK(T().Mount("/m1", fs1));
  // Mounting again stacks on top (Linux semantics) and shadows fs1.
  ASSERT_OK(T().Mount("/m1", fs2));
  EXPECT_OK(T().Statx(kAtFdCwd, "/m1/two", 0));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/m1/one", 0), Errno::kENOENT);
  ASSERT_OK(T().Umount("/m1"));
  EXPECT_OK(T().Statx(kAtFdCwd, "/m1/one", 0));
  EXPECT_ERR(T().Umount("/"), Errno::kEINVAL);
  ASSERT_OK(T().Umount("/m1"));
}

TEST_P(MountTest, NamespaceIsolation) {
  ASSERT_OK(T().Mkdir("/shared"));
  ASSERT_OK(T().Mkdir("/private"));
  auto fd = T().Open("/shared/base", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));

  TaskPtr isolated = T().Fork();
  ASSERT_OK(isolated->UnshareMountNs());
  auto fs = std::make_shared<MemFs>();
  ASSERT_OK(fs->Create(MemFs::kRootIno, "secret", FileType::kRegular, 0644,
                       0, 0));
  ASSERT_OK(isolated->Mount("/private", fs));
  // Visible inside the namespace...
  EXPECT_OK(isolated->Statx(kAtFdCwd, "/private/secret", 0));
  EXPECT_OK(isolated->Statx(kAtFdCwd, "/private/secret", 0));
  // ...but not outside (the host namespace has no such mount).
  EXPECT_ERR(T().Statx(kAtFdCwd, "/private/secret", 0), Errno::kENOENT);
  // Shared underlying files remain visible to both.
  EXPECT_OK(isolated->Statx(kAtFdCwd, "/shared/base", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/shared/base", 0));
}

TEST_P(MountTest, SamePathDifferentNamespacesDifferentFiles) {
  ASSERT_OK(T().Mkdir("/app"));
  TaskPtr ns1 = T().Fork();
  ASSERT_OK(ns1->UnshareMountNs());
  TaskPtr ns2 = T().Fork();
  ASSERT_OK(ns2->UnshareMountNs());
  auto fs1 = std::make_shared<MemFs>();
  auto fs2 = std::make_shared<MemFs>();
  ASSERT_OK(fs1->Create(MemFs::kRootIno, "cfg", FileType::kRegular, 0644, 0,
                        0));
  ASSERT_OK(fs2->Create(MemFs::kRootIno, "cfg", FileType::kRegular, 0644, 0,
                        0));
  ASSERT_OK(ns1->Mount("/app", fs1));
  ASSERT_OK(ns2->Mount("/app", fs2));
  auto st1 = ns1->Statx(kAtFdCwd, "/app/cfg", 0);
  auto st2 = ns2->Statx(kAtFdCwd, "/app/cfg", 0);
  ASSERT_OK(st1);
  ASSERT_OK(st2);
  EXPECT_NE(st1->dev, st2->dev);  // same path, different files (§4.3)
  // Warm both, re-check: the per-namespace DLHTs must not cross-talk.
  for (int i = 0; i < 3; ++i) {
    auto r1 = ns1->Statx(kAtFdCwd, "/app/cfg", 0);
    auto r2 = ns2->Statx(kAtFdCwd, "/app/cfg", 0);
    ASSERT_OK(r1);
    ASSERT_OK(r2);
    EXPECT_NE(r1->dev, r2->dev);
  }
}

TEST_P(MountTest, ChrootConfinesAndResolvesFromNewRoot) {
  ASSERT_OK(T().Mkdir("/jail"));
  ASSERT_OK(T().Mkdir("/jail/etc"));
  auto fd = T().Open("/jail/etc/conf", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  fd = T().Open("/outside", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));

  TaskPtr jailed = T().Fork();
  ASSERT_OK(jailed->Chroot("/jail"));
  EXPECT_OK(jailed->Statx(kAtFdCwd, "/etc/conf", 0));
  EXPECT_OK(jailed->Statx(kAtFdCwd, "/etc/conf", 0));
  EXPECT_ERR(jailed->Statx(kAtFdCwd, "/outside", 0), Errno::kENOENT);
  EXPECT_ERR(jailed->Statx(kAtFdCwd, "/../outside", 0), Errno::kENOENT);
  // The host keeps its view.
  EXPECT_OK(T().Statx(kAtFdCwd, "/outside", 0));
  // And the same literal path means different things (chroot-aware
  // signatures).
  EXPECT_ERR(jailed->Statx(kAtFdCwd, "/jail/etc/conf", 0), Errno::kENOENT);
}

TEST_P(MountTest, MountAliasSameInstanceTwice) {
  // proc-style: one FS instance mounted at two places (§4.3).
  ASSERT_OK(T().Mkdir("/proc1"));
  ASSERT_OK(T().Mkdir("/proc2"));
  auto proc = std::make_shared<MemFs>();
  ASSERT_OK(proc->Create(MemFs::kRootIno, "version", FileType::kRegular,
                         0444, 0, 0));
  ASSERT_OK(T().Mount("/proc1", proc));
  ASSERT_OK(T().Mount("/proc2", proc));
  auto st1 = T().Statx(kAtFdCwd, "/proc1/version", 0);
  auto st2 = T().Statx(kAtFdCwd, "/proc2/version", 0);
  ASSERT_OK(st1);
  ASSERT_OK(st2);
  EXPECT_EQ(st1->ino, st2->ino);
  EXPECT_EQ(st1->dev, st2->dev);  // same superblock: a true alias
  // Ping-pong between the aliases; §4.3's one-DLHT-entry rule must keep
  // every answer correct.
  for (int i = 0; i < 6; ++i) {
    auto st = T().Statx(kAtFdCwd, i % 2 != 0 ? "/proc1/version" : "/proc2/version", 0);
    ASSERT_OK(st);
    EXPECT_EQ(st->ino, st1->ino);
  }
}

INSTANTIATE_TEST_SUITE_P(BothKernels, MountTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Optimized" : "Baseline";
                         });

}  // namespace
}  // namespace dircache
