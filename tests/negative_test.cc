// Aggressive negative-dentry caching (§5.2): negatives after unlink and
// rename, pseudo-FS negatives, deep negative chains, ENOTDIR chains, and
// their coherence with later creations.
#include "tests/test_util.h"

namespace dircache {
namespace {

class NegativeTest : public ::testing::Test {
 protected:
  NegativeTest() : world_(CacheConfig::Optimized()) {}
  Task& T() { return *world_.root; }
  CacheStats& stats() { return world_.kernel->stats(); }
  TestWorld world_;
};

TEST_F(NegativeTest, UnlinkLeavesNegativeDentry) {
  auto fd = T().Open("/lockfile", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Unlink("/lockfile"));
  uint64_t neg_before = stats().negative_hits.value();
  uint64_t misses_before = stats().dcache_misses.value();
  EXPECT_ERR(T().Statx(kAtFdCwd, "/lockfile", 0), Errno::kENOENT);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/lockfile", 0), Errno::kENOENT);
  // Both stats were answered from cached state, no FS consultation.
  EXPECT_EQ(stats().dcache_misses.value(), misses_before);
  EXPECT_GE(stats().negative_hits.value() +
                world_.kernel->stats().fastpath_hits.value(),
            neg_before + 1);
  // The Emacs-backup pattern: recreate over the negative.
  fd = T().Open("/lockfile", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_OK(T().Statx(kAtFdCwd, "/lockfile", 0));
}

TEST_F(NegativeTest, UnlinkOfOpenFileStillCachesNegative) {
  auto fd = T().Open("/busy", kOCreat | kORdWr);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "still here"));
  ASSERT_OK(T().Unlink("/busy"));  // file is open: inode must live on
  uint64_t misses_before = stats().dcache_misses.value();
  EXPECT_ERR(T().Statx(kAtFdCwd, "/busy", 0), Errno::kENOENT);
  EXPECT_EQ(stats().dcache_misses.value(), misses_before);
  // The open handle keeps working (paper: "unlink of a file still in use").
  auto st = T().Fstat(*fd);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 10u);
  ASSERT_OK(T().Close(*fd));
}

TEST_F(NegativeTest, RenameSourceBecomesNegative) {
  auto fd = T().Open("/old", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Rename("/old", "/new"));
  uint64_t misses_before = stats().dcache_misses.value();
  EXPECT_ERR(T().Statx(kAtFdCwd, "/old", 0), Errno::kENOENT);
  EXPECT_EQ(stats().dcache_misses.value(), misses_before);
}

TEST_F(NegativeTest, PseudoFsGetsNegativesWhenEnabled) {
  ASSERT_OK(T().Mkdir("/proc"));
  ASSERT_OK(T().Mount("/proc", std::make_shared<MemFs>()));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/proc/no_such_node", 0), Errno::kENOENT);
  uint64_t misses_before = stats().dcache_misses.value();
  EXPECT_ERR(T().Statx(kAtFdCwd, "/proc/no_such_node", 0), Errno::kENOENT);
  // §5.2: with the optimization, the repeat is served from the cache even
  // though MemFs declines negative dentries by default.
  EXPECT_EQ(stats().dcache_misses.value(), misses_before);
}

TEST_F(NegativeTest, BaselinePseudoFsSkipsNegatives) {
  TestWorld baseline(CacheConfig::Baseline());
  Task& t = *baseline.root;
  ASSERT_OK(t.Mkdir("/proc"));
  ASSERT_OK(t.Mount("/proc", std::make_shared<MemFs>()));
  EXPECT_ERR(t.Statx(kAtFdCwd, "/proc/nothing", 0), Errno::kENOENT);
  uint64_t misses_before = baseline.kernel->stats().dcache_misses.value();
  EXPECT_ERR(t.Statx(kAtFdCwd, "/proc/nothing", 0), Errno::kENOENT);
  // Baseline Linux behaviour: every miss goes back to the pseudo FS.
  EXPECT_GT(baseline.kernel->stats().dcache_misses.value(), misses_before);
}

TEST_F(NegativeTest, DeepNegativeChainsAnswerFullPaths) {
  ASSERT_OK(T().Mkdir("/lib"));
  // LD_LIBRARY_PATH-style probing of a nonexistent subtree.
  EXPECT_ERR(T().Statx(kAtFdCwd, "/lib/arch/x86/libfoo.so", 0), Errno::kENOENT);
  uint64_t misses_before = stats().dcache_misses.value();
  uint64_t fast_before = stats().fastpath_hits.value();
  EXPECT_ERR(T().Statx(kAtFdCwd, "/lib/arch/x86/libfoo.so", 0), Errno::kENOENT);
  EXPECT_EQ(stats().dcache_misses.value(), misses_before);
  EXPECT_EQ(stats().fastpath_hits.value(), fast_before + 1);
  // Intermediate prefixes are cached too.
  EXPECT_ERR(T().Statx(kAtFdCwd, "/lib/arch", 0), Errno::kENOENT);
  EXPECT_EQ(stats().dcache_misses.value(), misses_before);
}

TEST_F(NegativeTest, CreatingIntermediateInvalidatesDeepChain) {
  ASSERT_OK(T().Mkdir("/base"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/base/sub/leaf", 0), Errno::kENOENT);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/base/sub/leaf", 0), Errno::kENOENT);  // cached
  ASSERT_OK(T().Mkdir("/base/sub"));
  // The chain under "sub" referred to a nonexistent directory; now that it
  // exists (empty), the leaf is still ENOENT — but for the right reason.
  EXPECT_ERR(T().Statx(kAtFdCwd, "/base/sub/leaf", 0), Errno::kENOENT);
  auto fd = T().Open("/base/sub/leaf", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_OK(T().Statx(kAtFdCwd, "/base/sub/leaf", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/base/sub/leaf", 0));
}

TEST_F(NegativeTest, EnotdirChainsUnderRegularFiles) {
  auto fd = T().Open("/notadir", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/notadir/x/y", 0), Errno::kENOTDIR);
  uint64_t misses_before = stats().dcache_misses.value();
  EXPECT_ERR(T().Statx(kAtFdCwd, "/notadir/x/y", 0), Errno::kENOTDIR);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/notadir/x", 0), Errno::kENOTDIR);
  EXPECT_EQ(stats().dcache_misses.value(), misses_before);
  // Replacing the file with a directory flips the answers.
  ASSERT_OK(T().Unlink("/notadir"));
  ASSERT_OK(T().Mkdir("/notadir"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/notadir/x", 0), Errno::kENOENT);
}

TEST_F(NegativeTest, DeepNegativeLimitBoundsChainLength) {
  CacheConfig cfg = CacheConfig::Optimized();
  cfg.deep_negative_limit = 2;
  TestWorld limited(cfg);
  Task& t = *limited.root;
  ASSERT_OK(t.Mkdir("/top"));
  size_t before = limited.kernel->dcache().dentry_count();
  EXPECT_ERR(t.Statx(kAtFdCwd, "/top/a/b/c/d/e/f/g/h", 0), Errno::kENOENT);
  // Chain creation stopped at the limit: at most limit+1 new dentries.
  EXPECT_LE(limited.kernel->dcache().dentry_count(), before + 3);
}

TEST_F(NegativeTest, NegativesDoNotLeakAcrossPermissions) {
  // A cached ENOENT must not be revealed to a cred lacking search
  // permission on the prefix.
  ASSERT_OK(T().Mkdir("/secret", 0700));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/secret/ghost", 0), Errno::kENOENT);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/secret/ghost", 0), Errno::kENOENT);  // cached
  TaskPtr mallory = world_.UserTask(1003, 1003);
  EXPECT_ERR(mallory->Statx(kAtFdCwd, "/secret/ghost", 0), Errno::kEACCES);
}

}  // namespace
}  // namespace dircache
