// Observability subsystem tests (DESIGN.md §9–§10): histogram bucketing,
// the lock-free trace and journal rings (including multi-writer wraparound
// and torn-read skipping), the path heat sketches, the background sampler's
// timeline and watchdogs, the versioned snapshot and its Chrome-trace
// export, the invariant auditor, and — most load-bearing — that a disabled
// kernel records nothing and keeps the warm hit path shared-write-free.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/audit.h"
#include "src/obs/event_journal.h"
#include "src/obs/heat_sketch.h"
#include "src/obs/histogram.h"
#include "src/obs/request_trace.h"
#include "src/obs/snapshot.h"
#include "src/obs/span_ring.h"
#include "src/obs/walk_trace.h"
#include "src/server/batch.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

using obs::BucketFor;
using obs::BucketHigh;
using obs::BucketLow;
using obs::HistogramSummary;
using obs::JournalEvent;
using obs::JournalEventRecord;
using obs::JournalRing;
using obs::LatencyHistogram;
using obs::ObsOp;
using obs::PathHeatSketch;
using obs::WalkOutcome;
using obs::WalkTraceEvent;
using obs::WalkTraceRing;

// --- histogram ------------------------------------------------------------

TEST(Histogram, BucketEdges) {
  EXPECT_EQ(BucketFor(0), 0u);
  EXPECT_EQ(BucketFor(1), 1u);
  EXPECT_EQ(BucketFor(2), 2u);
  EXPECT_EQ(BucketFor(3), 2u);
  EXPECT_EQ(BucketFor(4), 3u);
  EXPECT_EQ(BucketFor(1023), 10u);
  EXPECT_EQ(BucketFor(1024), 11u);
  EXPECT_EQ(BucketFor(1ull << 63), 63u);  // clamped into the top bucket
  EXPECT_EQ(BucketFor(~0ull), 63u);
  // Every value must fall inside [BucketLow, BucketHigh] of its bucket.
  for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 1000ull, 1ull << 40}) {
    size_t b = BucketFor(v);
    EXPECT_GE(v, BucketLow(b)) << v;
    EXPECT_LE(v, BucketHigh(b)) << v;
  }
}

TEST(Histogram, RecordMergeQuantiles) {
  LatencyHistogram h;
  // 90 fast ops around 100ns, 10 slow ops around 100us.
  for (int i = 0; i < 90; ++i) {
    h.Record(100);
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(100'000);
  }
  HistogramSummary s = h.Merge();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_ns, 100'000u);
  EXPECT_EQ(s.sum_ns, 90u * 100 + 10u * 100'000);
  // p50 lands in 100's bucket [64,127]; p99 in 100000's [65536,131071],
  // clamped to the exact observed max.
  EXPECT_GE(s.P50(), 64u);
  EXPECT_LE(s.P50(), 127u);
  EXPECT_GE(s.P99(), 65536u);
  EXPECT_LE(s.P99(), 100'000u);
  EXPECT_NEAR(s.MeanNs(), (90.0 * 100 + 10.0 * 100'000) / 100.0, 1e-9);

  h.Reset();
  EXPECT_EQ(h.Merge().count, 0u);
  EXPECT_EQ(h.Merge().P99(), 0u);
}

TEST(Histogram, SinceIsTheLoopDelta) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  HistogramSummary before = h.Merge();
  for (int i = 0; i < 50; ++i) {
    h.Record(1000);
  }
  HistogramSummary d = h.Merge().Since(before);
  EXPECT_EQ(d.count, 50u);
  EXPECT_EQ(d.sum_ns, 50u * 1000);
  EXPECT_GE(d.P50(), 512u);
  EXPECT_LE(d.P50(), 1023u);
}

// Regression: `cur.Since(prev)` where prev has MORE in some field than cur
// (a Reset() raced between the two snapshots) must clamp the deltas to zero
// instead of wrapping to ~2^64 — the sampler diffs snapshots continuously
// and a reset mid-window used to poison the whole timeline.
TEST(Histogram, SinceClampsUnderflowFromAReset) {
  LatencyHistogram h;
  for (int i = 0; i < 40; ++i) {
    h.Record(1000);
  }
  HistogramSummary before = h.Merge();
  h.Reset();
  h.Record(10);  // post-reset state is "smaller" than `before` everywhere
  HistogramSummary d = h.Merge().Since(before);
  // Buckets clamp per-slot, so the post-reset recording (bucket 4) survives
  // while the vanished 40 (bucket 10) clamp to 0 instead of wrapping.
  EXPECT_EQ(d.count, 1u);
  // sum_ns is one scalar: 10 < 40000 clamps the whole field to 0 — the
  // regression is that it must not wrap to ~2^64.
  EXPECT_EQ(d.sum_ns, 0u);
  EXPECT_LE(d.P99(), 15u);  // quantiles from clamped buckets stay sane
}

// --- trace ring -----------------------------------------------------------

TEST(WalkTraceRing, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(WalkTraceRing(1).capacity(), 1u);
  EXPECT_EQ(WalkTraceRing(5).capacity(), 8u);
  EXPECT_EQ(WalkTraceRing(128).capacity(), 128u);
}

TEST(WalkTraceRing, WraparoundKeepsTheNewestEvents) {
  WalkTraceRing ring(8);
  for (uint64_t i = 1; i <= 20; ++i) {
    WalkTraceEvent ev;
    ev.outcome = WalkOutcome::kFastHit;
    ev.err = Errno::kOk;
    ev.components = static_cast<uint16_t>(i);
    ev.latency_ns = i * 10;
    ev.timestamp_ns = i * 100;
    ring.Record(ev);
  }
  std::vector<WalkTraceEvent> out;
  ring.Drain(&out);
  ASSERT_EQ(out.size(), 8u);
  // The 8 survivors are events 13..20 (oldest overwritten), fields intact.
  uint64_t min_ts = ~0ull;
  for (const WalkTraceEvent& ev : out) {
    EXPECT_EQ(ev.outcome, WalkOutcome::kFastHit);
    EXPECT_EQ(ev.err, Errno::kOk);
    EXPECT_EQ(ev.latency_ns, ev.components * 10u);
    EXPECT_EQ(ev.timestamp_ns, ev.components * 100u);
    min_ts = std::min(min_ts, ev.timestamp_ns);
  }
  EXPECT_EQ(min_ts, 13u * 100);
}

TEST(WalkTraceRing, PacksEveryField) {
  WalkTraceRing ring(4);
  WalkTraceEvent ev;
  ev.outcome = WalkOutcome::kSlowRetried;
  ev.err = Errno::kENOENT;
  ev.components = 300;  // needs the full 16 bits
  ev.symlink_crossings = 3;
  ev.mount_crossings = 2;
  ev.retries = 1;
  ev.wflags = 0x5;
  ev.latency_ns = 12345;
  ev.timestamp_ns = 42;  // low bit is the valid flag; 42 survives (&~1)
  ring.Record(ev);
  std::vector<WalkTraceEvent> out;
  ring.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].outcome, WalkOutcome::kSlowRetried);
  EXPECT_EQ(out[0].err, Errno::kENOENT);
  EXPECT_EQ(out[0].components, 300u);
  EXPECT_EQ(out[0].symlink_crossings, 3u);
  EXPECT_EQ(out[0].mount_crossings, 2u);
  EXPECT_EQ(out[0].retries, 1u);
  EXPECT_EQ(out[0].wflags, 0x5u);
  EXPECT_EQ(out[0].latency_ns, 12345u);
  EXPECT_EQ(out[0].timestamp_ns, 42u);
}

// Wraparound under concurrent writers, with a reader draining mid-storm:
// every drained event must be internally consistent (the publication
// protocol either skips a torn slot or yields a fully published one — never
// a mix of two writers' fields). Writers encode a checkable invariant into
// each event: latency = seq * 8 + writer, components = seq & 0xffff,
// retries = writer.
TEST(WalkTraceRing, ConcurrentWritersNeverYieldTornEvents) {
  WalkTraceRing ring(16);  // tiny: maximize slot reuse / wraparound
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<WalkTraceEvent> out;
      ring.Drain(&out);
      for (const WalkTraceEvent& ev : out) {
        uint64_t writer = ev.retries;
        uint64_t seq = ev.latency_ns / 8;
        if (ev.latency_ns % 8 != writer ||
            ev.components != (seq & 0xffff) ||
            ev.outcome != WalkOutcome::kFastHit) {
          torn.fetch_add(1);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t seq = 0; seq < kEventsPerWriter; ++seq) {
        WalkTraceEvent ev;
        ev.outcome = WalkOutcome::kFastHit;
        ev.err = Errno::kOk;
        ev.components = static_cast<uint16_t>(seq & 0xffff);
        ev.retries = static_cast<uint8_t>(w);
        ev.latency_ns = seq * 8 + static_cast<uint64_t>(w);
        // Globally unique (and even, so the |1 valid-bit keeps them
        // distinct): the torn-read re-check is timestamp-based, like the
        // real recorder's nanosecond clock.
        ev.timestamp_ns = (seq * kWriters + static_cast<uint64_t>(w)) * 2;
        ring.Record(ev);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0);

  // Quiescent drain still works and yields at most `capacity` events.
  std::vector<WalkTraceEvent> out;
  ring.Drain(&out);
  EXPECT_LE(out.size(), ring.capacity());
  EXPECT_FALSE(out.empty());
}

// --- journal ring ---------------------------------------------------------

TEST(JournalRing, WraparoundKeepsTheNewestEvents) {
  JournalRing ring(8);
  for (uint64_t i = 1; i <= 20; ++i) {
    ring.Record(JournalEvent::kChmod, /*begin_ns=*/i * 100,
                /*duration_ns=*/i * 10, /*arg0=*/i, /*arg1=*/i * 2);
  }
  std::vector<JournalEventRecord> out;
  ring.Drain(/*shard=*/3, &out);
  ASSERT_EQ(out.size(), 8u);
  uint64_t min_begin = ~0ull;
  for (const JournalEventRecord& ev : out) {
    EXPECT_EQ(ev.type, JournalEvent::kChmod);
    EXPECT_EQ(ev.shard, 3u);
    EXPECT_EQ(ev.duration_ns, ev.arg0 * 10);
    EXPECT_EQ(ev.arg1, ev.arg0 * 2);
    min_begin = std::min(min_begin, ev.begin_ns);
  }
  EXPECT_EQ(min_begin, 13u * 100);  // events 13..20 survive
}

TEST(JournalRing, ConcurrentWritersNeverYieldTornEvents) {
  JournalRing ring(16);
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<JournalEventRecord> out;
      ring.Drain(0, &out);
      for (const JournalEventRecord& ev : out) {
        // Writers encode: arg0 = seq*8 + writer, arg1 = arg0*3,
        // dur = arg0*7 — any cross-writer mix breaks the relation.
        if (ev.arg1 != ev.arg0 * 3 || ev.duration_ns != ev.arg0 * 7 ||
            ev.type != JournalEvent::kInvalidateSubtree) {
          torn.fetch_add(1);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t seq = 0; seq < kEventsPerWriter; ++seq) {
        uint64_t a = seq * 8 + static_cast<uint64_t>(w);
        // Globally unique even begin timestamps — see the walk-ring test.
        uint64_t begin = (seq * kWriters + static_cast<uint64_t>(w) + 1) * 2;
        ring.Record(JournalEvent::kInvalidateSubtree, begin,
                    /*duration_ns=*/a * 7, a, a * 3);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0);

  std::vector<JournalEventRecord> out;
  ring.Drain(0, &out);
  EXPECT_LE(out.size(), ring.capacity());
  EXPECT_FALSE(out.empty());
}

// --- heat sketch ----------------------------------------------------------

TEST(HeatSketch, CountsAndLabelsHeavyHitters) {
  PathHeatSketch sketch(8);
  for (int i = 0; i < 100; ++i) {
    sketch.Record(/*key=*/1, "/hot/a");
  }
  for (int i = 0; i < 50; ++i) {
    sketch.Record(/*key=*/2, "/hot/b");
  }
  sketch.Record(/*key=*/3, "/cold");
  std::vector<obs::HeatEntry> top = sketch.Drain(/*topk=*/2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].path, "/hot/a");
  EXPECT_EQ(top[0].count, 100u);
  EXPECT_EQ(top[0].err, 0u);  // seated in an empty slot: exact
  EXPECT_GE(top[0].cm_est, 100u);  // Count-Min never underestimates
  EXPECT_EQ(top[1].path, "/hot/b");
  EXPECT_EQ(top[1].count, 50u);
}

TEST(HeatSketch, TakeoverInheritsErrorBoundAndKeepsHeavyKeys) {
  PathHeatSketch sketch(2);  // 2 slots: force Space-Saving evictions
  for (int i = 0; i < 1000; ++i) {
    sketch.Record(1, "/heavy");
  }
  // A stream of distinct one-shot keys churns the second slot.
  for (uint64_t k = 100; k < 200; ++k) {
    sketch.Record(k, "/churn");
  }
  std::vector<obs::HeatEntry> top = sketch.Drain(10);
  ASSERT_FALSE(top.empty());
  // The classic Space-Saving guarantee: the heavy key survives the churn,
  // its count is >= truth, overstating by at most err.
  EXPECT_EQ(top[0].path, "/heavy");
  EXPECT_GE(top[0].count, 1000u);
  EXPECT_LE(top[0].count - top[0].err, 1000u);
  // Churn keys carry a nonzero inherited error bound.
  if (top.size() > 1) {
    EXPECT_GT(top[1].err, 0u);
  }
  sketch.Reset();
  EXPECT_TRUE(sketch.Drain(10).empty());
}

// --- kernel integration ---------------------------------------------------

TEST(Observe, DisabledKernelRecordsNothing) {
  TestWorld w(CacheConfig::Optimized());  // obs defaults to off
  EXPECT_FALSE(w.kernel->obs().enabled());
  ASSERT_OK(w.root->Mkdir("/d"));
  for (int i = 0; i < 8; ++i) {
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/d", 0));
  }
  obs::ObsSnapshot snap = w.kernel->Observe();
  EXPECT_EQ(snap.schema_version, obs::kObsSchemaVersion);
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.TotalWalks(), 0u);
  EXPECT_EQ(snap.Op(ObsOp::kStat).count, 0u);
  EXPECT_TRUE(snap.trace.empty());
  // The flat counters are still there — Observe() supersedes
  // stats().ToString() even with recording off.
  EXPECT_FALSE(snap.counters.empty());
}

TEST(Observe, DisabledWarmHitPathStaysSharedWriteFree) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/a"));
  ASSERT_OK(w.root->Mkdir("/a/b"));
  auto fd = w.root->Open("/a/b/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  for (int i = 0; i < 4; ++i) {  // warm past the one-time writes
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/a/b/f", 0));
  }
  uint64_t writes0 = w.kernel->stats().shared_writes.value();
  for (int i = 0; i < 100; ++i) {
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/a/b/f", 0));
  }
  EXPECT_EQ(w.kernel->stats().shared_writes.value(), writes0);
}

TEST(Observe, EnabledKernelClassifiesWalks) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  EXPECT_TRUE(w.kernel->obs().enabled());
  ASSERT_OK(w.root->Mkdir("/a"));
  auto fd = w.root->Open("/a/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/a/f", 0));  // populates the fastpath
  obs::ObsSnapshot before = w.kernel->Observe();
  for (int i = 0; i < 10; ++i) {
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/a/f", 0));
  }
  EXPECT_ERR(w.root->Statx(kAtFdCwd, "/a/missing", 0), Errno::kENOENT);
  obs::ObsSnapshot after = w.kernel->Observe();

  auto hits = [](const obs::ObsSnapshot& s, WalkOutcome o) {
    return s.outcomes[static_cast<size_t>(o)];
  };
  EXPECT_EQ(hits(after, WalkOutcome::kFastHit) -
                hits(before, WalkOutcome::kFastHit),
            10u);
  EXPECT_EQ(after.TotalWalks() - before.TotalWalks(), 11u);
  // Latency flowed into both the per-walk and the per-syscall histograms.
  EXPECT_EQ(after.Op(ObsOp::kLookup).count - before.Op(ObsOp::kLookup).count,
            11u);
  EXPECT_EQ(after.Op(ObsOp::kStat).count - before.Op(ObsOp::kStat).count,
            11u);
  EXPECT_GT(after.Op(ObsOp::kStat).sum_ns, before.Op(ObsOp::kStat).sum_ns);
  // The failed walk shows up in the trace with its errno.
  ASSERT_FALSE(after.trace.empty());
  const obs::WalkTraceEvent& last = after.trace.back();
  EXPECT_EQ(last.err, Errno::kENOENT);
}

TEST(Observe, SnapshotJsonShape) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/j"));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/j", 0));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/j", 0));
  obs::ObsSnapshot snap = w.kernel->Observe();
  std::string json = snap.ToJson();
  // Versioned, fixed-field-order contract (scripts/bench_smoke.sh greps
  // for the schema_version; renames here are schema bumps).
  EXPECT_NE(json.find("\"schema_version\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  for (const char* key :
       {"\"ops\"", "\"walk_outcomes\"", "\"trace\"", "\"counters\"",
        "\"lookup\"", "\"p50_ns\"", "\"p95_ns\"", "\"p99_ns\"",
        "\"fast_hit\"", "\"timeline\"", "\"heat\"", "\"journal\"",
        "\"hot_paths\"", "\"slow_paths\"", "\"miss_dirs\"", "\"spans\"",
        "\"attribution\"", "\"memory\"", "\"budget_bytes\"",
        "\"dlht_resize_in_flight\"", "\"tenants\"", "\"flight_dumps\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Field order is part of the contract: version first, ops before trace,
  // every v2 section strictly after the last v1 field, every v3 section
  // strictly after the last v2 field, and the v4 memory section between
  // attribution and flight_dumps (older readers parse a prefix-compatible
  // document).
  EXPECT_LT(json.find("\"schema_version\""), json.find("\"ops\""));
  EXPECT_LT(json.find("\"ops\""), json.find("\"walk_outcomes\""));
  EXPECT_LT(json.find("\"walk_outcomes\""), json.find("\"trace\""));
  EXPECT_LT(json.find("\"counters\""), json.find("\"timeline\""));
  EXPECT_LT(json.find("\"timeline\""), json.find("\"heat\""));
  EXPECT_LT(json.find("\"heat\""), json.find("\"journal\""));
  EXPECT_LT(json.find("\"journal\""), json.find("\"spans\""));
  EXPECT_LT(json.find("\"spans\""), json.find("\"attribution\""));
  EXPECT_LT(json.find("\"attribution\""), json.find("\"memory\""));
  EXPECT_LT(json.find("\"memory\""), json.find("\"flight_dumps\""));

  std::string text = snap.ToText();
  EXPECT_NE(text.find("schema v4"), std::string::npos) << text;
  EXPECT_NE(text.find("fast_hit"), std::string::npos);
}

TEST(Observe, ResetClearsHistogramsAndOutcomes) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/r"));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/r", 0));
  ASSERT_GT(w.kernel->Observe().TotalWalks(), 0u);
  w.kernel->obs().Reset();
  obs::ObsSnapshot snap = w.kernel->Observe();
  EXPECT_EQ(snap.TotalWalks(), 0u);
  EXPECT_EQ(snap.Op(ObsOp::kStat).count, 0u);
}

TEST(Observe, SyscallHistogramsCoverTheTaxonomy) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/ops"));
  auto fd = w.root->Open("/ops/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  ASSERT_OK(w.root->Rename("/ops/f", "/ops/g"));
  ASSERT_OK(w.root->Chmod("/ops/g", 0600));
  auto dfd = w.root->Open("/ops", kORead | kODirectory);
  ASSERT_OK(dfd);
  EXPECT_OK(w.root->ReadDirFd(*dfd));
  ASSERT_OK(w.root->Close(*dfd));

  obs::ObsSnapshot snap = w.kernel->Observe();
  EXPECT_GT(snap.Op(ObsOp::kOpen).count, 0u);
  EXPECT_GT(snap.Op(ObsOp::kRename).count, 0u);
  EXPECT_GT(snap.Op(ObsOp::kChmod).count, 0u);
  EXPECT_GT(snap.Op(ObsOp::kReaddir).count, 0u);
  // Rename invalidates the renamed entry's subtree — the write-side cost
  // has its own histogram.
  EXPECT_GT(snap.Op(ObsOp::kInvalidate).count, 0u);
}

// --- heat sketches through the kernel -------------------------------------

TEST(Observe, HeatSectionAttributesHitsAndMisses) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/h"));
  auto fd = w.root->Open("/h/hot", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/h/hot", 0));  // populate the fastpath
  for (int i = 0; i < 50; ++i) {
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/h/hot", 0));
  }
  // Fresh (uncached) paths fast-miss; their parent dir is the miss source.
  for (int i = 0; i < 20; ++i) {
    EXPECT_ERR(w.root->Statx(kAtFdCwd, "/h/miss" + std::to_string(i), 0),
               Errno::kENOENT);
  }

  obs::ObsSnapshot snap = w.kernel->Observe();
  ASSERT_FALSE(snap.heat.hot_paths.empty());
  EXPECT_EQ(snap.heat.hot_paths[0].path, "/h/hot");
  EXPECT_GE(snap.heat.hot_paths[0].count, 50u);
  EXPECT_GE(snap.heat.hot_paths[0].cm_est, snap.heat.hot_paths[0].count -
                                               snap.heat.hot_paths[0].err);
  ASSERT_FALSE(snap.heat.miss_dirs.empty());
  EXPECT_EQ(snap.heat.miss_dirs[0].path, "/h");
  EXPECT_GE(snap.heat.miss_dirs[0].count, 20u);
  // The cold walks those misses fell back to show up as slowpath paths.
  EXPECT_FALSE(snap.heat.slow_paths.empty());
}

// --- coherence journal through the kernel ---------------------------------

TEST(Observe, JournalRecordsCoherenceEvents) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/j"));
  ASSERT_OK(w.root->Mkdir("/j/sub"));
  auto fd = w.root->Open("/j/sub/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/j/sub/f", 0));  // cache the subtree
  ASSERT_OK(w.root->Rename("/j/sub", "/j/sub2"));
  ASSERT_OK(w.root->Chmod("/j/sub2", 0700));
  ASSERT_OK(w.root->Unlink("/j/sub2/f"));

  obs::ObsSnapshot snap = w.kernel->Observe();
  auto count_of = [&](JournalEvent type) {
    size_t n = 0;
    for (const JournalEventRecord& ev : snap.journal) {
      if (ev.type == type) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GE(count_of(JournalEvent::kRename), 1u);
  EXPECT_GE(count_of(JournalEvent::kRenameLock), 1u);
  EXPECT_GE(count_of(JournalEvent::kChmod), 1u);
  EXPECT_GE(count_of(JournalEvent::kUnlink), 1u);
  EXPECT_GE(count_of(JournalEvent::kInvalidateSubtree), 1u);
  // Journal is oldest-first, and a subtree invalidation reports its work:
  // the rename pass covered /j/sub (itself + f), so arg0 (version bumps)
  // must be at least 2.
  uint64_t prev = 0;
  uint64_t max_bumped = 0;
  for (const JournalEventRecord& ev : snap.journal) {
    EXPECT_GE(ev.begin_ns, prev);
    prev = ev.begin_ns;
    if (ev.type == JournalEvent::kInvalidateSubtree) {
      max_bumped = std::max(max_bumped, ev.arg0);
    }
  }
  EXPECT_GE(max_bumped, 2u);
  // The rename span carries its rename_lock hold time as arg0.
  for (const JournalEventRecord& ev : snap.journal) {
    if (ev.type == JournalEvent::kRename) {
      EXPECT_GT(ev.arg0, 0u);
      EXPECT_GE(ev.duration_ns, ev.arg0);  // the span contains the lock
    }
  }
}

// A parallel invalidation pass journals its shape: the kInvalidateSubtree
// span carries worker/batch payloads in arg2/arg3, and one kInvalWorker
// span per participant nests inside it.
TEST(Observe, JournalCarriesParallelInvalidationPayloads) {
  CacheConfig cfg = CacheConfig::Optimized();
  cfg.inval_parallel_threshold = 64;  // engage the pool at test size
  cfg.inval_max_workers = 3;
  TestWorld w(cfg, nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/p"));
  for (int i = 0; i < 400; ++i) {
    auto fd = w.root->Open("/p/f" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(w.root->Close(*fd));
  }
  for (int i = 0; i < 400; ++i) {
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/p/f" + std::to_string(i), 0));  // cache it
  }
  ASSERT_OK(w.root->Chmod("/p", 0700));

  obs::ObsSnapshot snap = w.kernel->Observe();
  const JournalEventRecord* parallel_pass = nullptr;
  size_t worker_spans = 0;
  for (const JournalEventRecord& ev : snap.journal) {
    if (ev.type == JournalEvent::kInvalidateSubtree && ev.arg2 > 0) {
      parallel_pass = &ev;
    }
    if (ev.type == JournalEvent::kInvalWorker) {
      ++worker_spans;
      EXPECT_LT(ev.arg0, 3u);  // worker index < configured pool size
    }
  }
  ASSERT_NE(parallel_pass, nullptr) << "no parallel pass journaled";
  EXPECT_EQ(parallel_pass->arg2, 3u);         // workers
  EXPECT_GT(parallel_pass->arg3, 0u);         // dlht_batches
  EXPECT_GE(parallel_pass->arg0, 400u);       // dentries bumped
  EXPECT_GE(parallel_pass->arg1, 400u);       // dlht entries evicted
  EXPECT_EQ(worker_spans, 3u);  // one span per participant
  // Worker spans nest inside the owning pass span.
  for (const JournalEventRecord& ev : snap.journal) {
    if (ev.type == JournalEvent::kInvalWorker) {
      EXPECT_GE(ev.begin_ns, parallel_pass->begin_ns);
      EXPECT_LE(ev.begin_ns + ev.duration_ns,
                parallel_pass->begin_ns + parallel_pass->duration_ns);
    }
  }

  // The JSON rendering names the extended payloads; 2-arg events must NOT
  // grow extra keys (schema v2 append-only rule).
  std::string json = snap.ToJson();
  for (const char* key : {"\"workers\"", "\"dlht_batches\"",
                          "\"inval_worker\"", "\"visited\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // The Chrome trace renders the pass and its nested worker spans.
  std::string trace = snap.ToChromeTrace();
  EXPECT_NE(trace.find("\"name\":\"invalidate_subtree\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"inval_worker\""), std::string::npos);
  EXPECT_NE(trace.find("\"workers\":3"), std::string::npos);
}

// --- chrome trace export --------------------------------------------------

TEST(Observe, ChromeTraceExportsJournalAndWalks) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/t"));
  auto fd = w.root->Open("/t/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/t/f", 0));
  ASSERT_OK(w.root->Rename("/t/f", "/t/g"));
  std::string trace = w.kernel->Observe().ToChromeTrace();
  // Shape: an object with a traceEvents array of complete events carrying
  // the two categories; chrome://tracing requires ph/ts/dur/pid/tid.
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
  EXPECT_EQ(trace.back(), '}');
  for (const char* key :
       {"\"ph\":\"X\"", "\"cat\":\"walk\"", "\"cat\":\"coherence\"",
        "\"name\":\"rename\"", "\"ts\":", "\"dur\":", "\"pid\":1,",
        "\"tid\":"}) {
    EXPECT_NE(trace.find(key), std::string::npos) << "missing " << key;
  }
}

// --- background sampler ---------------------------------------------------

TEST(Observe, SamplerBuildsATimeline) {
  ObsConfig cfg = ObsConfig::EnabledWithSampler();
  cfg.sample_interval_ms = 2;
  TestWorld w(CacheConfig::Optimized(), nullptr, cfg);
  ASSERT_OK(w.root->Mkdir("/s"));
  auto fd = w.root->Open("/s/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  // Keep walking while the sampler ticks a few windows.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_OK(w.root->Statx(kAtFdCwd, "/s/f", 0));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  obs::ObsTimeline tl = w.kernel->Timeline();
  EXPECT_TRUE(tl.active);
  EXPECT_EQ(tl.interval_ms, 2u);
  EXPECT_GT(tl.samples_taken, 0u);
  ASSERT_FALSE(tl.samples.empty());
  uint64_t total_walks = 0;
  uint64_t total_fast = 0;
  uint64_t prev_t = 0;
  for (const obs::TimelineSample& s : tl.samples) {
    EXPECT_GT(s.t_ns, prev_t);  // strictly ordered, oldest first
    prev_t = s.t_ns;
    EXPECT_GT(s.window_ns, 0u);
    EXPECT_GE(s.walks, s.fast_hits);
    total_walks += s.walks;
    total_fast += s.fast_hits;
  }
  EXPECT_GT(total_walks, 0u);
  EXPECT_GT(total_fast, 0u);  // warm stats dominate: fast hits observed
  // A healthy warm workload must not have tripped the watchdogs.
  EXPECT_FALSE(tl.invalidation_spike);
  // The v2 snapshot embeds the same timeline.
  obs::ObsSnapshot snap = w.kernel->Observe();
  EXPECT_TRUE(snap.timeline.active);
  EXPECT_GT(snap.timeline.samples_taken, 0u);
}

TEST(Observe, SamplerWatchdogFlagsInvalidationSpike) {
  ObsConfig cfg = ObsConfig::EnabledWithSampler();
  cfg.sample_interval_ms = 2;
  // Any invalidation traffic at all trips this threshold (≥1 pass in a
  // ~2ms window is ≥500/s).
  cfg.watchdog_max_invalidations_per_sec = 400.0;
  TestWorld w(CacheConfig::Optimized(), nullptr, cfg);
  ASSERT_OK(w.root->Mkdir("/w"));
  auto fd = w.root->Open("/w/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/w/f", 0));
  // An invalidation storm: rename the cached entry back and forth while
  // the sampler watches.
  for (int round = 0; round < 25; ++round) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(w.root->Rename("/w/f", "/w/g"));
      ASSERT_OK(w.root->Rename("/w/g", "/w/f"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    if (w.kernel->Timeline().invalidation_spike) {
      break;  // sticky — no need to keep storming
    }
  }
  EXPECT_TRUE(w.kernel->Timeline().invalidation_spike);
}

// --- watchdog clear/re-arm (schema v3) ------------------------------------

TEST(Observe, WatchdogFlagsClearAndRearm) {
  ObsConfig cfg = ObsConfig::EnabledWithSampler();
  cfg.sample_interval_ms = 2;
  cfg.watchdog_max_invalidations_per_sec = 400.0;
  TestWorld w(CacheConfig::Optimized(), nullptr, cfg);
  ASSERT_OK(w.root->Mkdir("/w"));
  auto fd = w.root->Open("/w/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  auto storm_until_flagged = [&] {
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 20; ++i) {
        ASSERT_OK(w.root->Rename("/w/f", "/w/g"));
        ASSERT_OK(w.root->Rename("/w/g", "/w/f"));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
      if (w.kernel->Timeline().invalidation_spike) {
        return;
      }
    }
  };
  storm_until_flagged();
  ASSERT_TRUE(w.kernel->Timeline().invalidation_spike);
  // Let the storm's trailing windows flush so the flag can't immediately
  // re-trip from stale traffic, then acknowledge.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.kernel->ClearWatchdogFlags();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  obs::ObsTimeline tl = w.kernel->Timeline();
  EXPECT_FALSE(tl.invalidation_spike);  // was sticky forever before v3
  EXPECT_FALSE(tl.hit_rate_collapse);
  // The watchdog still works after an acknowledgment: a new storm re-trips.
  storm_until_flagged();
  EXPECT_TRUE(w.kernel->Timeline().invalidation_spike);
}

// --- span ring (schema v3) ------------------------------------------------

TEST(SpanRing, WraparoundKeepsTheNewestSpans) {
  obs::SpanRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 1; i <= 20; ++i) {
    ring.Record(obs::SpanKind::kWalkFast, obs::TraceOp::kStatx,
                /*trace_id=*/i, /*begin_ns=*/i * 100, /*duration_ns=*/i,
                /*arg0=*/i, /*arg1=*/i * 2);
  }
  std::vector<obs::SpanEvent> out;
  ring.Drain(3, &out);
  ASSERT_EQ(out.size(), 8u);  // exactly one lap survives
  for (const obs::SpanEvent& ev : out) {
    EXPECT_GT(ev.trace_id, 12u);  // only the newest 8 of 20
    EXPECT_EQ(ev.kind, obs::SpanKind::kWalkFast);
    EXPECT_EQ(ev.op, obs::TraceOp::kStatx);
    EXPECT_EQ(ev.shard, 3u);
    EXPECT_EQ(ev.arg0, ev.trace_id);
    EXPECT_EQ(ev.arg1, ev.trace_id * 2);
    EXPECT_EQ(ev.begin_ns, ev.trace_id * 100);
  }
}

TEST(SpanRing, ConcurrentWritersNeverYieldTornSpans) {
  obs::SpanRing ring(64);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        // Self-consistent payload: every field derives from (t, i), so any
        // cross-writer tearing is detectable on drain.
        uint64_t id = (static_cast<uint64_t>(t) << 32) | i;
        ring.Record(obs::SpanKind::kIo, obs::TraceOp::kOpen, id,
                    /*begin_ns=*/id * 2, /*duration_ns=*/id * 3,
                    /*arg0=*/id * 5, /*arg1=*/id * 7);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<obs::SpanEvent> out;
      ring.Drain(0, &out);
      for (const obs::SpanEvent& ev : out) {
        ASSERT_EQ(ev.kind, obs::SpanKind::kIo);
        ASSERT_EQ(ev.op, obs::TraceOp::kOpen);
        ASSERT_EQ(ev.begin_ns, (ev.trace_id * 2) & ~1ull);
        ASSERT_EQ(ev.duration_ns, ev.trace_id * 3);
        ASSERT_EQ(ev.arg0, ev.trace_id * 5);
        ASSERT_EQ(ev.arg1, ev.trace_id * 7);
      }
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& th : writers) {
    th.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  std::vector<obs::SpanEvent> out;
  ring.Drain(0, &out);
  EXPECT_EQ(out.size(), 64u);  // quiescent ring: every slot consistent
}

// --- request tracing (schema v3) ------------------------------------------

TEST(Trace, ForcedStatxProducesSpanTreeAndAttribution) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/a"));
  auto fd = w.root->Open("/a/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/a/f", 0));  // warm the fastpath

  // trace_sample_every defaults to 0: nothing is traced without the force
  // flag, so the warm loop above left the attributor untouched.
  obs::ObsSnapshot before = w.kernel->Observe();
  constexpr size_t kStatxIdx = static_cast<size_t>(obs::TraceOp::kStatx);
  EXPECT_EQ(before.attribution[kStatxIdx].traced, 0u);
  EXPECT_TRUE(before.spans.empty());

  Stat st;
  server::Sqe s = server::Sqe::Statx(kAtFdCwd, "/a/f", 0, &st);
  s.trace_force = 1;
  server::Cqe c;
  w.root->SubmitBatch(&s, 1, &c);
  ASSERT_TRUE(c.ok()) << c.error_name();

  obs::ObsSnapshot after = w.kernel->Observe();
  const obs::OpAttribution& at = after.attribution[kStatxIdx];
  EXPECT_EQ(at.traced, 1u);
  EXPECT_GT(at.total_ns, 0u);
  // Direct submission: no ring, so no queue/dispatch share.
  EXPECT_EQ(at.queue_ns, 0u);
  EXPECT_EQ(at.dispatch_ns, 0u);

  // The span tree: a kRequest root plus the walk child, all sharing one
  // nonzero trace id.
  ASSERT_FALSE(after.spans.empty());
  uint64_t trace_id = 0;
  bool saw_request = false;
  bool saw_walk = false;
  for (const obs::SpanEvent& ev : after.spans) {
    EXPECT_NE(ev.trace_id, 0u);
    if (trace_id == 0) {
      trace_id = ev.trace_id;
    }
    EXPECT_EQ(ev.trace_id, trace_id);  // one traced request, one id
    EXPECT_EQ(ev.op, obs::TraceOp::kStatx);
    if (ev.kind == obs::SpanKind::kRequest) {
      saw_request = true;
      EXPECT_EQ(ev.arg0, 0u);  // res
    }
    if (ev.kind == obs::SpanKind::kWalkFast ||
        ev.kind == obs::SpanKind::kWalkSlow) {
      saw_walk = true;
    }
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_walk);

  // The flight recorder retained the request with its breakdown.
  std::string report = w.kernel->obs().FlightRecorderReport();
  EXPECT_NE(report.find("1 traced request"), std::string::npos) << report;
  EXPECT_NE(report.find("op=statx"), std::string::npos) << report;
  EXPECT_NE(report.find("forced"), std::string::npos) << report;
  EXPECT_NE(report.find("attribution:"), std::string::npos) << report;
  EXPECT_NE(report.find("span "), std::string::npos) << report;
}

TEST(Trace, SamplingIsDeterministicPerThread) {
  ObsConfig cfg = ObsConfig::Enabled();
  cfg.trace_sample_every = 4;
  TestWorld w(CacheConfig::Optimized(), nullptr, cfg);
  ASSERT_OK(w.root->Mkdir("/s"));
  auto fd = w.root->Open("/s/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  constexpr size_t kStatxIdx = static_cast<size_t>(obs::TraceOp::kStatx);
  uint64_t traced0 = w.kernel->Observe().attribution[kStatxIdx].traced;
  // 16 consecutive submissions on one thread at 1-in-4 sampling trace
  // exactly 4, whatever phase the thread's dice were left in.
  for (int i = 0; i < 16; ++i) {
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/s/f", 0));
  }
  uint64_t traced = w.kernel->Observe().attribution[kStatxIdx].traced;
  EXPECT_EQ(traced - traced0, 4u);
}

TEST(Trace, UntracedWarmHitsStaySharedWriteFree) {
  ObsConfig cfg = ObsConfig::Enabled();
  cfg.trace_sample_every = 0;  // hooks armed, dice never hit
  TestWorld w(CacheConfig::Optimized(), nullptr, cfg);
  ASSERT_OK(w.root->Mkdir("/p"));
  auto fd = w.root->Open("/p/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  for (int i = 0; i < 4; ++i) {  // settle one-time writes
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/p/f", 0));
  }
  uint64_t writes0 = w.kernel->stats().shared_writes.value();
  for (int i = 0; i < 200; ++i) {
    EXPECT_OK(w.root->Statx(kAtFdCwd, "/p/f", 0));
  }
  EXPECT_EQ(w.kernel->stats().shared_writes.value(), writes0);
}

TEST(Trace, WatchdogTripDumpsFlightRecorder) {
  ObsConfig cfg = ObsConfig::EnabledWithTracing(/*sample_every=*/1);
  cfg.sample_interval_ms = 2;
  cfg.watchdog_max_invalidations_per_sec = 400.0;
  TestWorld w(CacheConfig::Optimized(), nullptr, cfg);
  ASSERT_OK(w.root->Mkdir("/w"));
  auto fd = w.root->Open("/w/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  // Seed the flight recorder with a forced end-to-end trace, then storm
  // renames until the watchdog transition fires the automatic dump.
  Stat st;
  server::Sqe s = server::Sqe::Statx(kAtFdCwd, "/w/f", 0, &st);
  s.trace_force = 1;
  server::Cqe c;
  w.root->SubmitBatch(&s, 1, &c);
  ASSERT_TRUE(c.ok()) << c.error_name();
  EXPECT_EQ(w.kernel->obs().flight_dumps(), 0u);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(w.root->Rename("/w/f", "/w/g"));
      ASSERT_OK(w.root->Rename("/w/g", "/w/f"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(4));
    if (w.kernel->obs().flight_dumps() > 0) {
      break;
    }
  }
  EXPECT_GT(w.kernel->obs().flight_dumps(), 0u);
  EXPECT_TRUE(w.kernel->Timeline().invalidation_spike);
  // The dumped evidence is a full span tree with a per-request breakdown.
  std::string report = w.kernel->obs().FlightRecorderReport();
  EXPECT_NE(report.find("request id="), std::string::npos) << report;
  EXPECT_NE(report.find("attribution:"), std::string::npos) << report;
  EXPECT_NE(report.find("span "), std::string::npos) << report;
  // The snapshot surfaces the dump count (schema v3).
  EXPECT_GT(w.kernel->Observe().flight_dumps, 0u);
}

TEST(Trace, ManualDumpBumpsCounterAndAuditStaysQuiet) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/d"));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/d", 0));
  // A clean audit must NOT dump the flight recorder.
  obs::AuditReport report = w.kernel->Audit();
  EXPECT_TRUE(report.clean()) << report.ToText();
  EXPECT_EQ(w.kernel->obs().flight_dumps(), 0u);
  w.kernel->obs().DumpFlightRecorder("test");
  EXPECT_EQ(w.kernel->obs().flight_dumps(), 1u);
}

TEST(Trace, ChromeTraceStaysWellFormedUnderWraparound) {
  // Tiny rings + trace-everything: every structure wraps several times and
  // the exported document must stay loadable and time-ordered.
  ObsConfig cfg = ObsConfig::Enabled();
  cfg.trace_sample_every = 1;
  cfg.span_ring_events = 8;
  cfg.journal_ring_events = 8;
  cfg.trace_ring_events = 8;
  TestWorld w(CacheConfig::Optimized(), nullptr, cfg);
  ASSERT_OK(w.root->Mkdir("/c"));
  auto fd = w.root->Open("/c/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_OK(w.root->Statx(kAtFdCwd, "/c/f", 0));
    }
    ASSERT_OK(w.root->Rename("/c/f", "/c/g"));
    ASSERT_OK(w.root->Rename("/c/g", "/c/f"));
  }
  std::string trace = w.kernel->Observe().ToChromeTrace();
  ASSERT_EQ(trace.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
  ASSERT_EQ(trace.back(), '}');
  // No emitted string contains braces/brackets, so raw counts must balance
  // — the cheap proxy for "json.load would succeed".
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '{'),
            std::count(trace.begin(), trace.end(), '}'));
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '['),
            std::count(trace.begin(), trace.end(), ']'));
  EXPECT_NE(trace.find("\"cat\":\"request\""), std::string::npos);
  // Events are globally sorted by ts (hence monotonic per tid, which Chrome
  // requires for containment nesting).
  double prev = -1.0;
  size_t events = 0;
  for (size_t pos = trace.find("\"ts\":"); pos != std::string::npos;
       pos = trace.find("\"ts\":", pos + 1)) {
    double ts = std::strtod(trace.c_str() + pos + 5, nullptr);
    EXPECT_GE(ts, prev);
    prev = ts;
    ++events;
  }
  EXPECT_GT(events, 8u);  // journal + walks + spans all contributed
}

// --- invariant auditor ----------------------------------------------------

TEST(Audit, CleanAfterMixedWorkload) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/a"));
  ASSERT_OK(w.root->Mkdir("/a/b"));
  ASSERT_OK(w.root->Mkdir("/a/b/c"));
  for (int i = 0; i < 32; ++i) {
    std::string p = "/a/b/c/f" + std::to_string(i);
    auto fd = w.root->Open(p, kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(w.root->Close(*fd));
    EXPECT_OK(w.root->Statx(kAtFdCwd, p, 0));
  }
  ASSERT_OK(w.root->Rename("/a/b", "/a/b2"));
  ASSERT_OK(w.root->Chmod("/a/b2", 0700));
  ASSERT_OK(w.root->Unlink("/a/b2/c/f0"));
  ASSERT_OK(w.root->Symlink("/a/b2", "/link"));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/link/c/f1", 0));
  EXPECT_ERR(w.root->Statx(kAtFdCwd, "/a/b2/c/missing", 0), Errno::kENOENT);

  obs::AuditReport report = w.kernel->Audit();
  EXPECT_TRUE(report.clean()) << report.ToText();
  // Coverage: "clean" must mean "checked plenty", not "checked nothing".
  EXPECT_GT(report.dentries_visited, 30u);
  EXPECT_GT(report.hash_chain_entries, 0u);
  EXPECT_GT(report.dlht_entries, 0u);
  EXPECT_GT(report.lru_entries, 0u);
  EXPECT_NE(report.Summary().find("clean"), std::string::npos);
}

TEST(Audit, CleanAfterDropCachesAndOnBaseline) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/d"));
  auto fd = w.root->Open("/d/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/d/f", 0));
  w.kernel->DropCaches();
  obs::AuditReport report = w.kernel->Audit();
  EXPECT_TRUE(report.clean()) << report.ToText();

  TestWorld base(CacheConfig::Baseline());
  ASSERT_OK(base.root->Mkdir("/x"));
  EXPECT_OK(base.root->Statx(kAtFdCwd, "/x", 0));
  obs::AuditReport base_report = base.kernel->Audit();
  EXPECT_TRUE(base_report.clean()) << base_report.ToText();
}

}  // namespace
}  // namespace dircache
