// Observability subsystem tests (DESIGN.md §9): histogram bucketing, the
// lock-free trace ring, the versioned snapshot, and — most load-bearing —
// that a disabled kernel records nothing and keeps the warm hit path
// shared-write-free.
#include <algorithm>
#include <string>
#include <vector>

#include "src/obs/histogram.h"
#include "src/obs/snapshot.h"
#include "src/obs/walk_trace.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

using obs::BucketFor;
using obs::BucketHigh;
using obs::BucketLow;
using obs::HistogramSummary;
using obs::LatencyHistogram;
using obs::ObsOp;
using obs::WalkOutcome;
using obs::WalkTraceEvent;
using obs::WalkTraceRing;

// --- histogram ------------------------------------------------------------

TEST(Histogram, BucketEdges) {
  EXPECT_EQ(BucketFor(0), 0u);
  EXPECT_EQ(BucketFor(1), 1u);
  EXPECT_EQ(BucketFor(2), 2u);
  EXPECT_EQ(BucketFor(3), 2u);
  EXPECT_EQ(BucketFor(4), 3u);
  EXPECT_EQ(BucketFor(1023), 10u);
  EXPECT_EQ(BucketFor(1024), 11u);
  EXPECT_EQ(BucketFor(1ull << 63), 63u);  // clamped into the top bucket
  EXPECT_EQ(BucketFor(~0ull), 63u);
  // Every value must fall inside [BucketLow, BucketHigh] of its bucket.
  for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 1000ull, 1ull << 40}) {
    size_t b = BucketFor(v);
    EXPECT_GE(v, BucketLow(b)) << v;
    EXPECT_LE(v, BucketHigh(b)) << v;
  }
}

TEST(Histogram, RecordMergeQuantiles) {
  LatencyHistogram h;
  // 90 fast ops around 100ns, 10 slow ops around 100us.
  for (int i = 0; i < 90; ++i) {
    h.Record(100);
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(100'000);
  }
  HistogramSummary s = h.Merge();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_ns, 100'000u);
  EXPECT_EQ(s.sum_ns, 90u * 100 + 10u * 100'000);
  // p50 lands in 100's bucket [64,127]; p99 in 100000's [65536,131071],
  // clamped to the exact observed max.
  EXPECT_GE(s.P50(), 64u);
  EXPECT_LE(s.P50(), 127u);
  EXPECT_GE(s.P99(), 65536u);
  EXPECT_LE(s.P99(), 100'000u);
  EXPECT_NEAR(s.MeanNs(), (90.0 * 100 + 10.0 * 100'000) / 100.0, 1e-9);

  h.Reset();
  EXPECT_EQ(h.Merge().count, 0u);
  EXPECT_EQ(h.Merge().P99(), 0u);
}

TEST(Histogram, SinceIsTheLoopDelta) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  HistogramSummary before = h.Merge();
  for (int i = 0; i < 50; ++i) {
    h.Record(1000);
  }
  HistogramSummary d = h.Merge().Since(before);
  EXPECT_EQ(d.count, 50u);
  EXPECT_EQ(d.sum_ns, 50u * 1000);
  EXPECT_GE(d.P50(), 512u);
  EXPECT_LE(d.P50(), 1023u);
}

// --- trace ring -----------------------------------------------------------

TEST(WalkTraceRing, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(WalkTraceRing(1).capacity(), 1u);
  EXPECT_EQ(WalkTraceRing(5).capacity(), 8u);
  EXPECT_EQ(WalkTraceRing(128).capacity(), 128u);
}

TEST(WalkTraceRing, WraparoundKeepsTheNewestEvents) {
  WalkTraceRing ring(8);
  for (uint64_t i = 1; i <= 20; ++i) {
    WalkTraceEvent ev;
    ev.outcome = WalkOutcome::kFastHit;
    ev.err = Errno::kOk;
    ev.components = static_cast<uint16_t>(i);
    ev.latency_ns = i * 10;
    ev.timestamp_ns = i * 100;
    ring.Record(ev);
  }
  std::vector<WalkTraceEvent> out;
  ring.Drain(&out);
  ASSERT_EQ(out.size(), 8u);
  // The 8 survivors are events 13..20 (oldest overwritten), fields intact.
  uint64_t min_ts = ~0ull;
  for (const WalkTraceEvent& ev : out) {
    EXPECT_EQ(ev.outcome, WalkOutcome::kFastHit);
    EXPECT_EQ(ev.err, Errno::kOk);
    EXPECT_EQ(ev.latency_ns, ev.components * 10u);
    EXPECT_EQ(ev.timestamp_ns, ev.components * 100u);
    min_ts = std::min(min_ts, ev.timestamp_ns);
  }
  EXPECT_EQ(min_ts, 13u * 100);
}

TEST(WalkTraceRing, PacksEveryField) {
  WalkTraceRing ring(4);
  WalkTraceEvent ev;
  ev.outcome = WalkOutcome::kSlowRetried;
  ev.err = Errno::kENOENT;
  ev.components = 300;  // needs the full 16 bits
  ev.symlink_crossings = 3;
  ev.mount_crossings = 2;
  ev.retries = 1;
  ev.wflags = 0x5;
  ev.latency_ns = 12345;
  ev.timestamp_ns = 42;  // low bit is the valid flag; 42 survives (&~1)
  ring.Record(ev);
  std::vector<WalkTraceEvent> out;
  ring.Drain(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].outcome, WalkOutcome::kSlowRetried);
  EXPECT_EQ(out[0].err, Errno::kENOENT);
  EXPECT_EQ(out[0].components, 300u);
  EXPECT_EQ(out[0].symlink_crossings, 3u);
  EXPECT_EQ(out[0].mount_crossings, 2u);
  EXPECT_EQ(out[0].retries, 1u);
  EXPECT_EQ(out[0].wflags, 0x5u);
  EXPECT_EQ(out[0].latency_ns, 12345u);
  EXPECT_EQ(out[0].timestamp_ns, 42u);
}

// --- kernel integration ---------------------------------------------------

TEST(Observe, DisabledKernelRecordsNothing) {
  TestWorld w(CacheConfig::Optimized());  // obs defaults to off
  EXPECT_FALSE(w.kernel->obs().enabled());
  ASSERT_OK(w.root->Mkdir("/d"));
  for (int i = 0; i < 8; ++i) {
    EXPECT_OK(w.root->StatPath("/d"));
  }
  obs::ObsSnapshot snap = w.kernel->Observe();
  EXPECT_EQ(snap.schema_version, obs::kObsSchemaVersion);
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.TotalWalks(), 0u);
  EXPECT_EQ(snap.Op(ObsOp::kStat).count, 0u);
  EXPECT_TRUE(snap.trace.empty());
  // The flat counters are still there — Observe() supersedes
  // stats().ToString() even with recording off.
  EXPECT_FALSE(snap.counters.empty());
}

TEST(Observe, DisabledWarmHitPathStaysSharedWriteFree) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/a"));
  ASSERT_OK(w.root->Mkdir("/a/b"));
  auto fd = w.root->Open("/a/b/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  for (int i = 0; i < 4; ++i) {  // warm past the one-time writes
    EXPECT_OK(w.root->StatPath("/a/b/f"));
  }
  uint64_t writes0 = w.kernel->stats().shared_writes.value();
  for (int i = 0; i < 100; ++i) {
    EXPECT_OK(w.root->StatPath("/a/b/f"));
  }
  EXPECT_EQ(w.kernel->stats().shared_writes.value(), writes0);
}

TEST(Observe, EnabledKernelClassifiesWalks) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  EXPECT_TRUE(w.kernel->obs().enabled());
  ASSERT_OK(w.root->Mkdir("/a"));
  auto fd = w.root->Open("/a/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->StatPath("/a/f"));  // populates the fastpath
  obs::ObsSnapshot before = w.kernel->Observe();
  for (int i = 0; i < 10; ++i) {
    EXPECT_OK(w.root->StatPath("/a/f"));
  }
  EXPECT_ERR(w.root->StatPath("/a/missing"), Errno::kENOENT);
  obs::ObsSnapshot after = w.kernel->Observe();

  auto hits = [](const obs::ObsSnapshot& s, WalkOutcome o) {
    return s.outcomes[static_cast<size_t>(o)];
  };
  EXPECT_EQ(hits(after, WalkOutcome::kFastHit) -
                hits(before, WalkOutcome::kFastHit),
            10u);
  EXPECT_EQ(after.TotalWalks() - before.TotalWalks(), 11u);
  // Latency flowed into both the per-walk and the per-syscall histograms.
  EXPECT_EQ(after.Op(ObsOp::kLookup).count - before.Op(ObsOp::kLookup).count,
            11u);
  EXPECT_EQ(after.Op(ObsOp::kStat).count - before.Op(ObsOp::kStat).count,
            11u);
  EXPECT_GT(after.Op(ObsOp::kStat).sum_ns, before.Op(ObsOp::kStat).sum_ns);
  // The failed walk shows up in the trace with its errno.
  ASSERT_FALSE(after.trace.empty());
  const obs::WalkTraceEvent& last = after.trace.back();
  EXPECT_EQ(last.err, Errno::kENOENT);
}

TEST(Observe, SnapshotJsonShape) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/j"));
  EXPECT_OK(w.root->StatPath("/j"));
  EXPECT_OK(w.root->StatPath("/j"));
  obs::ObsSnapshot snap = w.kernel->Observe();
  std::string json = snap.ToJson();
  // Versioned, fixed-field-order contract (scripts/bench_smoke.sh greps
  // for the schema_version; renames here are schema bumps).
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  for (const char* key :
       {"\"ops\"", "\"walk_outcomes\"", "\"trace\"", "\"counters\"",
        "\"lookup\"", "\"p50_ns\"", "\"p95_ns\"", "\"p99_ns\"",
        "\"fast_hit\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Field order is part of the contract: version first, ops before trace.
  EXPECT_LT(json.find("\"schema_version\""), json.find("\"ops\""));
  EXPECT_LT(json.find("\"ops\""), json.find("\"walk_outcomes\""));
  EXPECT_LT(json.find("\"walk_outcomes\""), json.find("\"trace\""));

  std::string text = snap.ToText();
  EXPECT_NE(text.find("schema v1"), std::string::npos) << text;
  EXPECT_NE(text.find("fast_hit"), std::string::npos);
}

TEST(Observe, ResetClearsHistogramsAndOutcomes) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/r"));
  EXPECT_OK(w.root->StatPath("/r"));
  ASSERT_GT(w.kernel->Observe().TotalWalks(), 0u);
  w.kernel->obs().Reset();
  obs::ObsSnapshot snap = w.kernel->Observe();
  EXPECT_EQ(snap.TotalWalks(), 0u);
  EXPECT_EQ(snap.Op(ObsOp::kStat).count, 0u);
}

TEST(Observe, SyscallHistogramsCoverTheTaxonomy) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/ops"));
  auto fd = w.root->Open("/ops/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  ASSERT_OK(w.root->Rename("/ops/f", "/ops/g"));
  ASSERT_OK(w.root->Chmod("/ops/g", 0600));
  auto dfd = w.root->Open("/ops", kORead | kODirectory);
  ASSERT_OK(dfd);
  EXPECT_OK(w.root->ReadDirFd(*dfd));
  ASSERT_OK(w.root->Close(*dfd));

  obs::ObsSnapshot snap = w.kernel->Observe();
  EXPECT_GT(snap.Op(ObsOp::kOpen).count, 0u);
  EXPECT_GT(snap.Op(ObsOp::kRename).count, 0u);
  EXPECT_GT(snap.Op(ObsOp::kChmod).count, 0u);
  EXPECT_GT(snap.Op(ObsOp::kReaddir).count, 0u);
  // Rename invalidates the renamed entry's subtree — the write-side cost
  // has its own histogram.
  EXPECT_GT(snap.Op(ObsOp::kInvalidate).count, 0u);
}

}  // namespace
}  // namespace dircache
