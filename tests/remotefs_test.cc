// Network file system semantics (§4.3): stateless protocols revalidate
// every cached component (and get no fastpath); callback-based protocols
// trust the cache and get the full fastpath.
#include "src/storage/remotefs.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

class RemoteFsTest : public ::testing::Test {
 protected:
  RemoteFsTest() : world_(CacheConfig::Optimized()) {}

  // Mount a RemoteFs at /net and build a small tree in it.
  RemoteFs* MountRemote(RemoteProtocol protocol) {
    RemoteFs::Options opt;
    opt.protocol = protocol;
    opt.rpc_latency_ns = 1000;
    auto fs = std::make_shared<RemoteFs>(opt);
    RemoteFs* raw = fs.get();
    EXPECT_OK(world_.root->Mkdir("/net"));
    EXPECT_OK(world_.root->Mount("/net", fs));
    EXPECT_OK(world_.root->Mkdir("/net/dir"));
    auto fd = world_.root->Open("/net/dir/file", kOCreat | kOWrite);
    EXPECT_TRUE(fd.ok());
    if (fd.ok()) {
      EXPECT_OK(world_.root->Close(*fd));
    }
    return raw;
  }

  TestWorld world_;
};

TEST_F(RemoteFsTest, StatelessRevalidatesEveryLookup) {
  RemoteFs* fs = MountRemote(RemoteProtocol::kStateless);
  ASSERT_OK(world_.root->Statx(kAtFdCwd, "/net/dir/file", 0));
  uint64_t rpcs_before = fs->rpcs();
  uint64_t fast_before = world_.kernel->stats().fastpath_hits.value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(world_.root->Statx(kAtFdCwd, "/net/dir/file", 0));
  }
  // Every lookup cost RPCs (per-component revalidation)...
  EXPECT_GE(fs->rpcs(), rpcs_before + 20);  // >= 2 components x 10 stats
  // ...and none rode the fastpath.
  EXPECT_EQ(world_.kernel->stats().fastpath_hits.value(), fast_before);
}

TEST_F(RemoteFsTest, CallbackProtocolGetsFastpath) {
  RemoteFs* fs = MountRemote(RemoteProtocol::kCallback);
  ASSERT_OK(world_.root->Statx(kAtFdCwd, "/net/dir/file", 0));
  uint64_t rpcs_before = fs->rpcs();
  uint64_t fast_before = world_.kernel->stats().fastpath_hits.value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(world_.root->Statx(kAtFdCwd, "/net/dir/file", 0));
  }
  // Cache hits all the way: no additional server traffic, fastpath rides.
  EXPECT_EQ(fs->rpcs(), rpcs_before);
  EXPECT_EQ(world_.kernel->stats().fastpath_hits.value(), fast_before + 10);
}

TEST_F(RemoteFsTest, StatelessSeesServerSideRemovals) {
  RemoteFs* fs = MountRemote(RemoteProtocol::kStateless);
  ASSERT_OK(world_.root->Statx(kAtFdCwd, "/net/dir/file", 0));
  // Simulate another client removing the file directly on the server.
  auto dir = fs->Lookup(fs->RootIno(), "dir");
  ASSERT_OK(dir);
  // (Unlink through the FS interface = a server-side change this client's
  // cache never saw.)
  ASSERT_OK(fs->Unlink(*dir, "file"));
  // The stale positive dentry is revalidated away on the next lookup.
  EXPECT_ERR(world_.root->Statx(kAtFdCwd, "/net/dir/file", 0), Errno::kENOENT);
}

TEST_F(RemoteFsTest, LocalFsUnaffectedByRemoteMount) {
  (void)MountRemote(RemoteProtocol::kStateless);
  auto fd = world_.root->Open("/local", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(world_.root->Close(*fd));
  ASSERT_OK(world_.root->Statx(kAtFdCwd, "/local", 0));
  uint64_t fast_before = world_.kernel->stats().fastpath_hits.value();
  ASSERT_OK(world_.root->Statx(kAtFdCwd, "/local", 0));
  EXPECT_EQ(world_.kernel->stats().fastpath_hits.value(), fast_before + 1);
}

TEST_F(RemoteFsTest, RpcLatencyIsCharged) {
  RemoteFs* fs = MountRemote(RemoteProtocol::kStateless);
  (void)fs;
  world_.root->io_clock().Reset();
  ASSERT_OK(world_.root->Statx(kAtFdCwd, "/net/dir/file", 0));
  EXPECT_GT(world_.root->io_clock().nanos(), 0u);
}

}  // namespace
}  // namespace dircache
