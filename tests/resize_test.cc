// Elastic DLHT resize + cache governor (DESIGN.md §15): online grow/shrink
// correctness, reader safety across table retirement, tenant accounting,
// and the memory-budget policy loop.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/dlht.h"
#include "src/core/pcc.h"
#include "src/vfs/governor.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

CacheConfig SmallTableConfig() {
  CacheConfig cfg = CacheConfig::Optimized();
  cfg.dlht_buckets = 1 << 6;  // small enough that tests exercise chains
  cfg.dlht_min_buckets = 1 << 4;
  cfg.dlht_resize_step = 8;  // several MigrateStep calls per resize
  return cfg;
}

// Drives an in-flight resize to completion in bounded steps.
size_t DrainResize(Dlht& table, CacheStats* stats, size_t step = 8) {
  size_t moved = 0;
  while (table.resize_in_flight()) {
    size_t n = table.MigrateStep(step, stats);
    EXPECT_GT(n, 0u);  // an in-flight resize always has buckets left
    moved += n;
  }
  return moved;
}

class ResizeTest : public ::testing::Test {
 protected:
  explicit ResizeTest(CacheConfig cfg = SmallTableConfig()) : world_(cfg) {}

  Dlht& Table() { return world_.kernel->root_ns()->dlht(); }
  CacheStats& Stats() { return world_.kernel->stats(); }

  // Create `n` files under `dir` (created if needed) and publish each to
  // the DLHT by statting it twice (slowpath publishes, second walk hits).
  void Populate(const std::string& dir, size_t n,
                const TaskPtr& task = nullptr) {
    const TaskPtr& t = task != nullptr ? task : world_.root;
    (void)world_.root->Mkdir(dir);
    for (size_t i = 0; i < n; ++i) {
      std::string path = dir + "/f" + std::to_string(i);
      auto fd = t->Open(path, kOCreat | kOWrite);
      ASSERT_OK(fd);
      ASSERT_OK(t->Close(*fd));
      ASSERT_OK(t->Statx(kAtFdCwd, path, 0));
      ASSERT_OK(t->Statx(kAtFdCwd, path, 0));
    }
  }

  // Every file statted warm must hit the fastpath. A scan over distinct
  // warm files pays exactly one shared write per hit — the PCC recency
  // tick (LRU upkeep, see Pcc::LookupKey) — so bounding the delta by `n`
  // proves the two-candidate resize probe adds no stores of its own. A
  // repeatedly-statted hot file must stay entirely store-free
  // (the §6.3 scalability property the resize must preserve).
  void ExpectWarmHitsSharedWriteFree(const std::string& dir, size_t n) {
    uint64_t hits_before = Stats().fastpath_hits.value();
    uint64_t shared_before = Stats().shared_writes.value();
    for (size_t i = 0; i < n; ++i) {
      ASSERT_OK(world_.root->Statx(kAtFdCwd,
                                   dir + "/f" + std::to_string(i), 0));
    }
    EXPECT_EQ(Stats().fastpath_hits.value() - hits_before, n);
    EXPECT_LE(Stats().shared_writes.value() - shared_before, n);
    for (int i = 0; i < 4; ++i) {  // settle the hot entry's recency tick
      ASSERT_OK(world_.root->Statx(kAtFdCwd, dir + "/f0", 0));
    }
    uint64_t hot_before = Stats().shared_writes.value();
    for (int i = 0; i < 16; ++i) {
      ASSERT_OK(world_.root->Statx(kAtFdCwd, dir + "/f0", 0));
    }
    EXPECT_EQ(Stats().shared_writes.value() - hot_before, 0u);
  }

  TestWorld world_;
};

TEST_F(ResizeTest, GrowShrinkCycleKeepsEntriesFindable) {
  constexpr size_t kFiles = 200;
  Populate("/d", kFiles);
  Dlht& table = Table();
  const size_t buckets = table.bucket_count();
  const size_t entries = table.size();
  EXPECT_GE(entries, kFiles);
  EXPECT_EQ(table.SizeSlow(), entries);

  // Grow 2x: every entry stays findable at every cursor position.
  ASSERT_TRUE(table.BeginResize(buckets * 2, &Stats()));
  EXPECT_TRUE(table.resize_in_flight());
  ExpectWarmHitsSharedWriteFree("/d", kFiles);  // mid-flight, cursor parked
  size_t moved = DrainResize(table, &Stats());
  EXPECT_EQ(moved, buckets);
  EXPECT_EQ(table.bucket_count(), buckets * 2);
  EXPECT_EQ(table.size(), entries);
  EXPECT_EQ(table.SizeSlow(), entries);
  ExpectWarmHitsSharedWriteFree("/d", kFiles);
  EXPECT_TRUE(world_.kernel->Audit().clean());

  // Shrink back: chains merge, nothing is lost.
  ASSERT_TRUE(table.BeginResize(buckets, &Stats()));
  DrainResize(table, &Stats());
  EXPECT_EQ(table.bucket_count(), buckets);
  EXPECT_EQ(table.SizeSlow(), entries);
  ExpectWarmHitsSharedWriteFree("/d", kFiles);
  EXPECT_TRUE(world_.kernel->Audit().clean());

  EXPECT_EQ(Stats().dlht_resizes.value(), 2u);
  EXPECT_EQ(Stats().dlht_buckets_migrated.value(), buckets * 2 + buckets);
}

TEST_F(ResizeTest, BeginResizeRejectsBadGeometryAndOverlap) {
  Dlht& table = Table();
  const size_t buckets = table.bucket_count();
  EXPECT_FALSE(table.BeginResize(buckets, &Stats()));      // same size
  EXPECT_FALSE(table.BeginResize(buckets * 4, &Stats()));  // skips a step
  EXPECT_FALSE(table.BeginResize(buckets * 2 - 1, &Stats()));
  ASSERT_TRUE(table.BeginResize(buckets * 2, &Stats()));
  EXPECT_FALSE(table.BeginResize(buckets * 4, &Stats()));  // already going
  DrainResize(table, &Stats());
  EXPECT_EQ(Stats().dlht_resizes.value(), 1u);
}

TEST_F(ResizeTest, AuditCleanWithResizeParkedMidFlight) {
  Populate("/mid", 120);
  Dlht& table = Table();
  ASSERT_TRUE(table.BeginResize(table.bucket_count() * 2, &Stats()));
  // Park the migration at several cursor positions; the auditor's
  // resize-aware iteration must count every entry exactly once each time.
  while (table.resize_in_flight()) {
    EXPECT_TRUE(world_.kernel->Audit().clean());
    table.MigrateStep(16, &Stats());
  }
  EXPECT_TRUE(world_.kernel->Audit().clean());
}

// Readers and mutators race grow/shrink cycles. Run under TSan
// (scripts/check.sh --resize) this validates the two-candidate probe and
// validated-lock writer protocol; under ASan it validates that retired
// tables outlive every reader (epoch reclamation).
TEST_F(ResizeTest, ConcurrentStormSurvivesResizeCycles) {
  constexpr size_t kFiles = 64;
  Populate("/storm", kFiles);
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> walks{0};
    std::thread reader([&] {
      TaskPtr t = world_.root->Fork();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::string path = "/storm/f" + std::to_string(i++ % kFiles);
        auto st = t->Statx(kAtFdCwd, path, 0);
        if (st.ok()) {
          walks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    std::thread mutator([&] {
      TaskPtr t = world_.root->Fork();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::string a = "/storm/m" + std::to_string(i % 8);
        std::string b = "/storm/r" + std::to_string(i % 8);
        auto fd = t->Open(a, kOCreat | kOWrite);
        if (fd.ok()) {
          (void)t->Close(*fd);
        }
        (void)t->Statx(kAtFdCwd, a, 0);
        (void)t->Rename(a, b);
        (void)t->Unlink(b);
        ++i;
      }
    });
    // Wait for the reader to make progress before churning the geometry —
    // on a single-CPU host the resize rounds below can otherwise finish
    // before the spawned threads are ever scheduled, and the point of the
    // test is that the walks overlap the migration.
    while (walks.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    // Main thread churns the geometry: one full up/down cycle per loop.
    Dlht& table = Table();
    const size_t buckets = table.bucket_count();
    for (int r = 0; r < 4; ++r) {
      size_t target = r % 2 == 0 ? buckets * 2 : buckets;
      if (table.BeginResize(target, &Stats())) {
        while (table.resize_in_flight()) {
          table.MigrateStep(4, &Stats());
        }
      }
    }
    stop.store(true, std::memory_order_release);
    reader.join();
    mutator.join();
    EXPECT_GT(walks.load(), 0u);
    // Quiesced: the structural invariants must hold after every cycle.
    EXPECT_TRUE(world_.kernel->Audit().clean()) << "cycle " << cycle;
  }
}

TEST_F(ResizeTest, TenantAccountingTracksCreationAndRelease) {
  DentryCache& dc = world_.kernel->dcache();
  ASSERT_OK(world_.root->Mkdir("/ten", 0777));
  TaskPtr alice = world_.UserTask(1000, 1000);
  TaskPtr bob = world_.UserTask(2000, 2000);
  for (int i = 0; i < 20; ++i) {
    auto fd = alice->Open("/ten/a" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(alice->Close(*fd));
  }
  for (int i = 0; i < 5; ++i) {
    auto fd = bob->Open("/ten/b" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(bob->Close(*fd));
  }
  auto usage_of = [&](uint32_t tenant) -> DentryCache::TenantUsage {
    for (const auto& t : dc.TenantUsages()) {
      if (t.tenant == tenant) {
        return t;
      }
    }
    return {};
  };
  EXPECT_EQ(usage_of(1000).dentries, 20u);
  EXPECT_EQ(usage_of(2000).dentries, 5u);
  EXPECT_GT(usage_of(0).dentries, 0u);  // root's own dentries

  // Negative dentries are charged to the walker that instantiated them.
  EXPECT_FALSE(alice->Statx(kAtFdCwd, "/ten/missing", 0).ok());
  EXPECT_FALSE(alice->Statx(kAtFdCwd, "/ten/missing", 0).ok());
  EXPECT_GE(usage_of(1000).negatives, 1u);

  // Eviction refunds the charge.
  uint64_t alice_before = usage_of(1000).dentries;
  {
    std::unique_lock<std::shared_mutex> tree(world_.kernel->tree_lock());
    dc.ShrinkTenant(1000, 10);
  }
  EXPECT_EQ(usage_of(1000).dentries, alice_before - 10);
  EXPECT_EQ(usage_of(2000).dentries, 5u);  // untouched
}

TEST_F(ResizeTest, ShrinkTenantSparesOtherTenantsReferenceBits) {
  DentryCache& dc = world_.kernel->dcache();
  ASSERT_OK(world_.root->Mkdir("/iso", 0777));
  TaskPtr quiet = world_.UserTask(1000, 1000);
  TaskPtr noisy = world_.UserTask(2000, 2000);
  for (int i = 0; i < 10; ++i) {
    auto fd = quiet->Open("/iso/q" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(quiet->Close(*fd));
  }
  for (int i = 0; i < 50; ++i) {
    auto fd = noisy->Open("/iso/n" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(noisy->Close(*fd));
  }
  // Shrinking the noisy tenant must not consume the quiet tenant's clock
  // reference bits: a later global Shrink still gives quiet entries their
  // second chance.
  size_t evicted;
  {
    std::unique_lock<std::shared_mutex> tree(world_.kernel->tree_lock());
    evicted = dc.ShrinkTenant(2000, 50);
  }
  EXPECT_EQ(evicted, 50u);
  for (int i = 0; i < 10; ++i) {
    auto st = quiet->Statx(kAtFdCwd, "/iso/q" + std::to_string(i), 0);
    EXPECT_TRUE(st.ok()) << "quiet entry " << i << " evicted";
  }
  EXPECT_TRUE(world_.kernel->Audit().clean());
}

// --- governor policy (driven deterministically via Tick) -------------------

struct GovernorWorldConfig {
  static CacheConfig Make() {
    CacheConfig cfg = SmallTableConfig();
    cfg.governor = true;
    cfg.governor_interval_us = 0;  // no thread; tests call Tick()
    cfg.pcc_bytes = 4096;
    // Room for the tables plus ~300 dentries; the workloads below exceed
    // it so EnforceBudget has to act.
    cfg.cache_memory_budget =
        300 * DentryCache::kApproxDentryBytes + 64 * 1024;
    return cfg;
  }
};

class GovernorTest : public ResizeTest {
 protected:
  GovernorTest() : ResizeTest(GovernorWorldConfig::Make()) {}
};

TEST_F(GovernorTest, ShrinksToBudgetAndSparesQuietTenant) {
  CacheGovernor* gov = world_.kernel->governor();
  ASSERT_NE(gov, nullptr);
  ASSERT_OK(world_.root->Mkdir("/gt", 0777));
  TaskPtr noisy = world_.UserTask(2000, 2000);
  TaskPtr quiet = world_.UserTask(1000, 1000);
  for (int i = 0; i < 700; ++i) {
    auto fd = noisy->Open("/gt/n" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(noisy->Close(*fd));
  }
  for (int i = 0; i < 40; ++i) {
    auto fd = quiet->Open("/gt/q" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(quiet->Close(*fd));
    ASSERT_OK(quiet->Statx(kAtFdCwd, "/gt/q" + std::to_string(i), 0));
  }
  DentryCache& dc = world_.kernel->dcache();
  auto dentries_of = [&](uint32_t tenant) -> uint64_t {
    for (const auto& t : dc.TenantUsages()) {
      if (t.tenant == tenant) {
        return t.dentries;
      }
    }
    return 0;
  };
  const uint64_t quiet_before = dentries_of(1000);
  ASSERT_GT(gov->MeasureUsage().total(),
            world_.kernel->config().cache_memory_budget);

  EXPECT_TRUE(gov->Tick());
  EXPECT_GE(world_.kernel->stats().governor_shrinks.value(), 1u);
  // Within one dentry's worth of the budget after the pass.
  EXPECT_LE(gov->MeasureUsage().total(),
            world_.kernel->config().cache_memory_budget +
                DentryCache::kApproxDentryBytes);
  // The noisy tenant paid; the quiet tenant's hot set survived (<5% loss).
  const uint64_t quiet_after = dentries_of(1000);
  EXPECT_GE(quiet_after * 100, quiet_before * 95)
      << "quiet tenant lost " << (quiet_before - quiet_after) << " of "
      << quiet_before;
  EXPECT_TRUE(world_.kernel->Audit().clean());
}

TEST_F(GovernorTest, GrowsDlhtWhenChainsDegradeAndMergesWhenSparse) {
  CacheGovernor* gov = world_.kernel->governor();
  ASSERT_NE(gov, nullptr);
  Dlht& table = Table();
  const size_t buckets = table.bucket_count();  // 64
  // ~4.7 entries/bucket on 64 buckets: the p99 chain comfortably exceeds
  // the grow trigger of 4.
  Populate("/gd", 300);
  ASSERT_GT(table.size(), 250u);
  EXPECT_TRUE(gov->Tick());  // begins (and steps) the grow
  while (table.resize_in_flight()) {
    gov->Tick();
  }
  EXPECT_EQ(table.bucket_count(), buckets * 2);

  // Evict nearly everything: occupancy falls under dlht_shrink_load and the
  // governor halves the table (possibly repeatedly, down to the floor).
  world_.kernel->DropCaches();
  ASSERT_LT(table.size(), 8u);
  for (int i = 0; i < 64 && table.bucket_count() >
                               world_.kernel->config().dlht_min_buckets;
       ++i) {
    gov->Tick();
  }
  EXPECT_EQ(table.bucket_count(), world_.kernel->config().dlht_min_buckets);
  EXPECT_TRUE(world_.kernel->Audit().clean());
}

TEST(GovernorJournal, ReportsPccPressureWhenDlhtIsHealthy) {
  CacheConfig cfg = GovernorWorldConfig::Make();
  cfg.cache_memory_budget = 0;  // isolate the attribution signal
  TestWorld world(cfg, nullptr, ObsConfig::Enabled());
  CacheGovernor* gov = world.kernel->governor();
  ASSERT_NE(gov, nullptr);
  // Create the init cred's PCC with occupancy tracking (no walk has run
  // yet, so this instance wins), then thrash it: an all-miss window pushes
  // the miss rate past the ShouldGrow threshold while the near-empty DLHT
  // stays healthy — the governor must attribute the pressure to the PCC.
  Pcc* pcc = world.root->cred()->GetOrCreatePcc(512, /*track_occupancy=*/
                                                true);
  ASSERT_NE(pcc, nullptr);
  for (uintptr_t i = 0; i < 4096; ++i) {
    (void)pcc->Lookup(reinterpret_cast<const void*>(0x1000 + 8 * i), 1);
  }
  ASSERT_TRUE(pcc->ShouldGrow());
  gov->Tick();
  gov->Tick();  // edge-triggered: a persistent episode journals once
  size_t pressure_events = 0;
  for (const auto& ev : world.kernel->Observe().journal) {
    pressure_events += ev.type == obs::JournalEvent::kPccPressure ? 1 : 0;
  }
  EXPECT_EQ(pressure_events, 1u);
}

}  // namespace
}  // namespace dircache
