// Batch API + run-to-completion server tests (DESIGN.md §12): ring FIFO
// across wraparound, submission-order execution, partial-batch failure
// isolation, multi-producer submit vs drain concurrency, and the
// shim-over-batch equivalence the redesign promises.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/server/batch.h"
#include "src/server/ring.h"
#include "src/server/server.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

using server::Cqe;
using server::Sqe;

// --- MpmcRing -------------------------------------------------------------

TEST(MpmcRing, FifoAcrossManyWraparounds) {
  server::MpmcRing<uint64_t> ring(4);  // tiny: wraps every 4 pushes
  ASSERT_EQ(ring.capacity(), 4u);
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  const uint64_t kTotal = 10000;  // 2500 full laps of the ring
  while (next_pop < kTotal) {
    while (next_push < kTotal && ring.TryPush(next_push)) {
      ++next_push;
    }
    uint64_t v = 0;
    while (ring.TryPop(&v)) {
      ASSERT_EQ(v, next_pop);  // FIFO preserved across wraparound
      ++next_pop;
    }
  }
  EXPECT_EQ(ring.SizeApprox(), 0u);
  EXPECT_FALSE(ring.TryPop(&next_push));
}

TEST(MpmcRing, RejectsPushWhenFullAndPopWhenEmpty) {
  server::MpmcRing<int> ring(2);
  int v = 0;
  EXPECT_FALSE(ring.TryPop(&v));
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));  // full
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 1);
}

TEST(MpmcRing, MultiProducerMultiConsumerLosesNothing) {
  server::MpmcRing<uint64_t> ring(64);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr uint64_t kPerProducer = 20000;
  std::atomic<uint64_t> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      uint64_t v = 0;
      while (!done.load(std::memory_order_acquire) || ring.SizeApprox() > 0) {
        if (ring.TryPop(&v)) {
          popped_sum.fetch_add(v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t v = static_cast<uint64_t>(p) * kPerProducer + i + 1;
        while (!ring.TryPush(v)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n + 1) / 2);  // every value exactly once
}

// --- batch execution through Task::SubmitBatch ----------------------------

TEST(Batch, ExecutesInSubmissionOrder) {
  TestWorld w(CacheConfig::Optimized());
  // mkdir /a, then stat it, then rmdir it, then stat again: the second stat
  // must fail — proof the entries ran in order, not reordered.
  Stat st{};
  std::vector<Sqe> sqes;
  sqes.push_back(Sqe::Mkdir(kAtFdCwd, "/ordered", 0755));
  sqes.push_back(Sqe::Statx(kAtFdCwd, "/ordered", 0, &st));
  sqes.push_back(Sqe::Unlink(kAtFdCwd, "/ordered", /*rmdir=*/true));
  sqes.push_back(Sqe::Statx(kAtFdCwd, "/ordered", 0, nullptr));
  for (size_t i = 0; i < sqes.size(); ++i) sqes[i].user_data = i;
  std::vector<Cqe> cqes(sqes.size());
  w.root->SubmitBatch(sqes.data(), sqes.size(), cqes.data());
  ASSERT_TRUE(cqes[0].ok()) << cqes[0].error_name();
  ASSERT_TRUE(cqes[1].ok()) << cqes[1].error_name();
  ASSERT_TRUE(cqes[2].ok()) << cqes[2].error_name();
  EXPECT_EQ(cqes[3].error(), Errno::kENOENT);
  for (size_t i = 0; i < cqes.size(); ++i) {
    EXPECT_EQ(cqes[i].user_data, i);  // CQE order mirrors SQE order
  }
}

TEST(Batch, PartialFailureIsIsolated) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/mix"));
  ASSERT_OK(w.root->Mkdir("/mix/good"));
  Stat a{}, b{};
  std::vector<Sqe> sqes;
  sqes.push_back(Sqe::Statx(kAtFdCwd, "/mix/good", 0, &a));       // ok
  sqes.push_back(Sqe::Statx(kAtFdCwd, "/mix/absent", 0, nullptr)); // ENOENT
  sqes.push_back(Sqe::Mkdir(kAtFdCwd, "/mix/good", 0755));         // EEXIST
  sqes.push_back(Sqe::Statx(kAtFdCwd, "/mix/good", 0, &b));       // still ok
  for (size_t i = 0; i < sqes.size(); ++i) sqes[i].user_data = 100 + i;
  std::vector<Cqe> cqes(sqes.size());
  w.root->SubmitBatch(sqes.data(), sqes.size(), cqes.data());
  EXPECT_TRUE(cqes[0].ok());
  EXPECT_EQ(cqes[1].error(), Errno::kENOENT);
  EXPECT_EQ(cqes[2].error(), Errno::kEEXIST);
  EXPECT_TRUE(cqes[3].ok()) << "a failed entry must not poison later ones";
  EXPECT_EQ(a.ino, b.ino);
}

TEST(Batch, ShimsAreEquivalentToBatchPath) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/same"));
  auto fd = w.root->Open("/same/f", kOCreat | kOWrite, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));

  auto via_shim = w.root->Statx(kAtFdCwd, "/same/f", 0);
  ASSERT_OK(via_shim);
  auto via_legacy = w.root->Statx(kAtFdCwd, "/same/f", 0);  // deprecated alias
  ASSERT_OK(via_legacy);
  Stat via_batch{};
  Sqe s = Sqe::Statx(kAtFdCwd, "/same/f", 0, &via_batch);
  Cqe c{};
  w.root->SubmitBatch(&s, 1, &c);
  ASSERT_TRUE(c.ok()) << c.error_name();
  EXPECT_EQ(via_shim->ino, via_batch.ino);
  EXPECT_EQ(via_legacy->ino, via_batch.ino);
  EXPECT_EQ(via_shim->mode, via_batch.mode);
  EXPECT_EQ(via_shim->size, via_batch.size);
}

// --- the server frontend --------------------------------------------------

TEST(Server, CompletionsArriveInSubmissionOrder) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/srv"));
  // SQE paths are views into caller memory: they must stay alive until the
  // completion is reaped, so the targets are materialized up front.
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) {
    paths.push_back("/srv/d" + std::to_string(i));
    ASSERT_OK(w.root->Mkdir(paths.back()));
  }
  server::ServerOptions opts;
  opts.shards = 1;
  opts.max_batch = 8;
  server::Server srv(w.kernel.get(), w.root, opts);
  srv.Start();
  constexpr uint64_t kOps = 4000;
  uint64_t submitted = 0;
  uint64_t reaped = 0;
  uint64_t expect_next = 0;
  std::vector<Cqe> cqes(64);
  while (reaped < kOps) {
    while (submitted < kOps && submitted - reaped < 32) {
      Sqe s = Sqe::Statx(kAtFdCwd, paths[submitted % 8], 0, nullptr);
      s.user_data = submitted;
      if (!srv.Submit(0, s)) break;
      ++submitted;
    }
    size_t got = srv.Reap(0, cqes.data(), cqes.size());
    for (size_t i = 0; i < got; ++i) {
      ASSERT_TRUE(cqes[i].ok());
      // Single producer, single shard: completion order == submission order.
      ASSERT_EQ(cqes[i].user_data, expect_next);
      ++expect_next;
    }
    reaped += got;
    if (got == 0) std::this_thread::yield();
  }
  srv.Stop();
  EXPECT_EQ(srv.ops_completed(), kOps);
  EXPECT_GT(srv.batches(), 0u);
}

TEST(Server, TinyRingWrapsAroundWithoutLoss) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/wrap"));
  server::ServerOptions opts;
  opts.shards = 1;
  opts.ring_depth = 4;  // forces thousands of SQ/CQ wraparounds
  opts.max_batch = 4;
  server::Server srv(w.kernel.get(), w.root, opts);
  srv.Start();
  constexpr uint64_t kOps = 5000;
  std::atomic<uint64_t> reaped{0};
  std::thread reaper([&] {
    std::vector<Cqe> cqes(8);
    while (reaped.load(std::memory_order_relaxed) < kOps) {
      size_t got = srv.Reap(0, cqes.data(), cqes.size());
      for (size_t i = 0; i < got; ++i) {
        ASSERT_TRUE(cqes[i].ok());
      }
      if (got == 0) {
        std::this_thread::yield();
      } else {
        reaped.fetch_add(got, std::memory_order_relaxed);
      }
    }
  });
  for (uint64_t i = 0; i < kOps; ++i) {
    Sqe s = Sqe::Statx(kAtFdCwd, "/wrap", 0, nullptr);
    s.user_data = i;
    srv.SubmitWait(0, s);  // blocks on the 4-deep ring until space frees
  }
  reaper.join();
  srv.Stop();
  EXPECT_EQ(srv.ops_completed(), kOps);
}

TEST(Server, StopDrainsAlreadySubmittedEntries) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/drain"));
  server::Server srv(w.kernel.get(), w.root, {});
  srv.Start();
  constexpr uint64_t kOps = 200;
  for (uint64_t i = 0; i < kOps; ++i) {
    Sqe s = Sqe::Statx(kAtFdCwd, "/drain", 0, nullptr);
    s.user_data = i;
    srv.SubmitWait(0, s);
  }
  srv.Stop();  // must execute every submitted SQE before exiting
  EXPECT_EQ(srv.ops_completed(), kOps);
  std::vector<Cqe> cqes(kOps);
  size_t got = 0;
  while (got < kOps) {
    size_t n = srv.Reap(0, cqes.data() + got, cqes.size() - got);
    ASSERT_GT(n, 0u) << "completions must survive Stop()";
    got += n;
  }
}

TEST(Server, FdsAreShardLocal) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/fds"));
  auto fd = w.root->Open("/fds/f", kOCreat | kOWrite, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  server::ServerOptions opts;
  opts.shards = 1;
  server::Server srv(w.kernel.get(), w.root, opts);
  srv.Start();
  // Open through the ring: the fd lives in the shard's forked task.
  Sqe open = Sqe::Open(kAtFdCwd, "/fds", kORead | kODirectory);
  open.user_data = 1;
  srv.SubmitWait(0, open);
  Cqe c{};
  while (srv.Reap(0, &c, 1) == 0) std::this_thread::yield();
  ASSERT_TRUE(c.ok()) << c.error_name();
  const auto shard_fd = static_cast<FdNum>(c.res);
  // A readdir on that fd must route back through the same shard...
  std::vector<DirEntry> ents;
  Sqe rd = Sqe::Readdir(shard_fd, &ents);
  rd.user_data = 2;
  srv.SubmitWait(0, rd);
  while (srv.Reap(0, &c, 1) == 0) std::this_thread::yield();
  ASSERT_TRUE(c.ok()) << c.error_name();
  EXPECT_GT(c.res, 0);
  EXPECT_EQ(static_cast<size_t>(c.res), ents.size());
  // ...and the submitting task must NOT see the fd (io_uring fixed-file
  // discipline: fd identity is per shard).
  EXPECT_FALSE(w.root->ReadDirFd(shard_fd).ok());
  Sqe cl = Sqe::Close(shard_fd);
  cl.user_data = 3;
  srv.SubmitWait(0, cl);
  while (srv.Reap(0, &c, 1) == 0) std::this_thread::yield();
  EXPECT_TRUE(c.ok()) << c.error_name();
  srv.Stop();
}

TEST(Server, MultiProducerMutationsUnderDrainKeepInvariants) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/mp"));
  for (int p = 0; p < 4; ++p) {
    ASSERT_OK(w.root->Mkdir("/mp/p" + std::to_string(p)));
  }
  server::ServerOptions opts;
  opts.shards = 2;
  opts.ring_depth = 64;
  opts.max_batch = 16;
  server::Server srv(w.kernel.get(), w.root, opts);
  srv.Start();
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 800;
  // SQE paths are views into caller memory and must outlive execution by
  // the shard thread, so every name is materialized before any submission
  // (and the vectors never reallocate afterwards).
  std::vector<std::string> bases(kProducers);
  std::vector<std::vector<std::string>> names(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    bases[p] = "/mp/p" + std::to_string(p);
    for (uint64_t i = 0; i < kPerProducer; ++i) {
      names[p].push_back(bases[p] + "/d" + std::to_string(i));
    }
  }
  std::atomic<uint64_t> submitted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const uint32_t shard = static_cast<uint32_t>(p) % opts.shards;
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        Sqe s;
        switch (i % 4) {
          case 0:
            s = Sqe::Mkdir(kAtFdCwd, names[p][i], 0755);
            break;
          case 1:  // stat what case 0 just made (same producer: ordered)
            s = Sqe::Statx(kAtFdCwd, names[p][i - 1], 0, nullptr);
            break;
          case 2:
            s = Sqe::Unlink(kAtFdCwd, names[p][i - 2], /*rmdir=*/true);
            break;
          default:
            s = Sqe::Statx(kAtFdCwd, bases[p], 0, nullptr);
            break;
        }
        s.user_data = static_cast<uint64_t>(p) << 32 | i;
        srv.SubmitWait(shard, s);
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::atomic<bool> stop_reaping{false};
  std::atomic<uint64_t> completions{0};
  std::vector<std::thread> reapers;
  for (uint32_t sh = 0; sh < opts.shards; ++sh) {
    reapers.emplace_back([&, sh] {
      std::vector<Cqe> cqes(32);
      while (true) {
        size_t got = srv.Reap(sh, cqes.data(), cqes.size());
        completions.fetch_add(got, std::memory_order_relaxed);
        if (got == 0) {
          if (stop_reaping.load(std::memory_order_acquire)) break;
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  srv.Stop();  // drains every submitted SQE
  // Every submission gets exactly one completion.
  while (completions.load(std::memory_order_relaxed) <
         kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  stop_reaping.store(true, std::memory_order_release);
  for (auto& t : reapers) t.join();
  EXPECT_EQ(completions.load(), kProducers * kPerProducer);
  EXPECT_EQ(srv.ops_completed(), kProducers * kPerProducer);
  // Post-condition: concurrent batch mutations left every cache invariant
  // intact.
  auto report = w.kernel->Audit();
  EXPECT_TRUE(report.clean()) << report.ToText();
}

// --- observability --------------------------------------------------------

TEST(Server, BatchCountersShowUpInSnapshot) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/obs"));
  server::ServerOptions opts;
  opts.max_batch = 8;
  server::Server srv(w.kernel.get(), w.root, opts);
  srv.Start();
  constexpr uint64_t kOps = 512;
  uint64_t reaped = 0;
  uint64_t submitted = 0;
  std::vector<Cqe> cqes(64);
  while (reaped < kOps) {
    while (submitted < kOps && submitted - reaped < 32) {
      Sqe s = Sqe::Statx(kAtFdCwd, "/obs", 0, nullptr);
      s.user_data = submitted;
      if (!srv.Submit(0, s)) break;
      ++submitted;
    }
    size_t got = srv.Reap(0, cqes.data(), cqes.size());
    reaped += got;
    if (got == 0) std::this_thread::yield();
  }
  srv.Stop();
  obs::ObsSnapshot snap = w.kernel->Observe();
  EXPECT_EQ(snap.Op(obs::ObsOp::kBatchDepth).count, srv.batches());
  EXPECT_EQ(snap.Op(obs::ObsOp::kBatchOccupancy).count, srv.batches());
  EXPECT_EQ(snap.Op(obs::ObsOp::kBatchDispatch).count, kOps);
  // Depth histogram records entry counts, so its sum is the op total.
  EXPECT_EQ(snap.Op(obs::ObsOp::kBatchDepth).sum_ns, kOps);
  EXPECT_GT(snap.Op(obs::ObsOp::kBatchDepth).max_ns, 1u)
      << "batching never kicked in: every turn drained a single SQE";
}

TEST(Server, ReapBackoffYieldsOnEmptyStreaksOnly) {
  server::ReapBackoff b(/*yield_after=*/4);
  EXPECT_EQ(b.empty_polls(), 0u);
  // Progress never builds a streak.
  for (int i = 0; i < 10; ++i) {
    b.Update(3);
    EXPECT_EQ(b.empty_polls(), 0u);
  }
  // Empty polls accumulate until yield_after, then the streak resets (the
  // yield itself is unobservable; the reset is the contract).
  b.Update(0);
  b.Update(0);
  b.Update(0);
  EXPECT_EQ(b.empty_polls(), 3u);
  b.Update(0);  // 4th empty: yields and resets
  EXPECT_EQ(b.empty_polls(), 0u);
  // Any progress mid-streak also resets.
  b.Update(0);
  b.Update(0);
  EXPECT_EQ(b.empty_polls(), 2u);
  b.Update(1);
  EXPECT_EQ(b.empty_polls(), 0u);
  // yield_after = 0 is clamped to 1: every empty poll yields, none linger.
  server::ReapBackoff always(0);
  always.Update(0);
  EXPECT_EQ(always.empty_polls(), 0u);
}

TEST(Server, ForcedTraceThroughRingsRecordsQueueWait) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  ASSERT_OK(w.root->Mkdir("/tr"));
  auto fd = w.root->Open("/tr/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  EXPECT_OK(w.root->Statx(kAtFdCwd, "/tr/f", 0));  // warm the fastpath
  server::Server srv(w.kernel.get(), w.root, {});
  srv.Start();
  Stat st;
  Sqe s = Sqe::Statx(kAtFdCwd, "/tr/f", 0, &st);
  s.trace_force = 1;  // trace_sample_every = 0: only the flag traces
  srv.SubmitWait(0, s);
  Cqe c;
  server::ReapBackoff backoff;
  while (srv.Reap(0, &c, 1) == 0) {
    backoff.Update(0);
  }
  srv.Stop();
  ASSERT_TRUE(c.ok()) << c.error_name();

  // A ring-submitted trace carries all four timestamps, so the synthesized
  // framing spans include the queue wait (submit -> shard dequeue); the
  // attributor banks it under kStatx.
  obs::ObsSnapshot snap = w.kernel->Observe();
  const obs::OpAttribution& at =
      snap.attribution[static_cast<size_t>(obs::TraceOp::kStatx)];
  EXPECT_EQ(at.traced, 1u);
  EXPECT_GT(at.total_ns, 0u);
  EXPECT_GT(at.queue_ns, 0u);
  bool saw_request = false;
  bool saw_queue = false;
  for (const obs::SpanEvent& ev : snap.spans) {
    if (ev.kind == obs::SpanKind::kRequest) {
      saw_request = true;
    }
    if (ev.kind == obs::SpanKind::kQueue) {
      saw_queue = true;
      EXPECT_EQ(ev.op, obs::TraceOp::kStatx);
    }
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_queue);
  // The flight recorder on the shard thread retained the request.
  std::string report = w.kernel->obs().FlightRecorderReport();
  EXPECT_NE(report.find("request id="), std::string::npos) << report;
  EXPECT_NE(report.find("attribution:"), std::string::npos) << report;
}

}  // namespace
}  // namespace dircache
