// Directory-shortcut miss fallback (DESIGN.md §14): on a final-probe DLHT
// miss the walker resumes from the deepest cached ancestor instead of the
// walk base. These tests pin the probe order (longest prefix first), the
// signature-keyed prefix-PCC entries, the taxonomy rows, and the soundness
// story under racing renames (a stale ancestor must force a root restart,
// never a wrong answer).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pcc.h"
#include "src/core/signature.h"
#include "src/util/rng.h"
#include "src/vfs/walk.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

class ShortcutTest : public ::testing::Test {
 protected:
  ShortcutTest() : world_(CacheConfig::Optimized()) {}

  CacheStats& S() { return world_.kernel->stats(); }
  Task& T() { return *world_.root; }

  TestWorld world_;
};

// The probe tries the longest prefix first: with the whole chain warm, a
// miss on a fresh leaf resumes one component short of the full path.
TEST_F(ShortcutTest, ResumesFromDeepestCachedAncestor) {
  ASSERT_OK(T().Mkdir("/a"));
  ASSERT_OK(T().Mkdir("/a/b"));
  ASSERT_OK(T().Mkdir("/a/b/c"));
  auto fd = T().Open("/a/b/c/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  // Warm the chain: the slowpath populates /a, /a/b, /a/b/c and f.
  ASSERT_OK(T().Statx(kAtFdCwd, "/a/b/c/f", 0));
  auto g = T().Open("/a/b/c/g", kOCreat | kOWrite);
  ASSERT_OK(g);
  ASSERT_OK(T().Close(*g));

  const uint64_t resumes = S().shortcut_resumes.value();
  const uint64_t skipped = S().shortcut_skipped.value();
  // g is in the dcache (the create walked to its parent) but not in the
  // DLHT: the final probe misses, and the deepest cached ancestor is its
  // direct parent /a/b/c — three components skipped out of four.
  ASSERT_OK(T().Statx(kAtFdCwd, "/a/b/c/g", 0));
  EXPECT_EQ(S().shortcut_resumes.value() - resumes, 1u);
  EXPECT_EQ(S().shortcut_skipped.value() - skipped, 3u);
  // The resumed walk populated g: the next lookup is a plain fast hit.
  const uint64_t fast = S().fastpath_hits.value();
  ASSERT_OK(T().Statx(kAtFdCwd, "/a/b/c/g", 0));
  EXPECT_EQ(S().fastpath_hits.value() - fast, 1u);
}

// Probe order across a gap: when only a shallow ancestor is cached, every
// deeper prefix is probed (and misses) before the shallow one is taken.
TEST_F(ShortcutTest, ProbesSuccessivelyShorterPrefixes) {
  ASSERT_OK(T().Mkdir("/a"));
  ASSERT_OK(T().Mkdir("/a/b"));
  ASSERT_OK(T().Mkdir("/a/b/c"));
  auto fd = T().Open("/a/b/c/g", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  // Start cold, then warm ONLY /a.
  world_.kernel->DropCaches();
  ASSERT_OK(T().Statx(kAtFdCwd, "/a", 0));

  const uint64_t probes = S().shortcut_probes.value();
  const uint64_t resumes = S().shortcut_resumes.value();
  const uint64_t skipped = S().shortcut_skipped.value();
  ASSERT_OK(T().Statx(kAtFdCwd, "/a/b/c/g", 0));
  // Longest-first: /a/b/c (miss), /a/b (miss), then /a (hit) — exactly
  // three prefix probes, one resume, one component of walking saved.
  EXPECT_EQ(S().shortcut_probes.value() - probes, 3u);
  EXPECT_EQ(S().shortcut_resumes.value() - resumes, 1u);
  EXPECT_EQ(S().shortcut_skipped.value() - skipped, 1u);
  // The resumed suffix walk populated the intermediate dirs: a sibling
  // lookup now resumes from /a/b/c, skipping three components.
  const uint64_t skipped2 = S().shortcut_skipped.value();
  auto h = T().Open("/a/b/c/h", kOCreat | kOWrite);
  ASSERT_OK(h);
  ASSERT_OK(T().Close(*h));
  ASSERT_OK(T().Statx(kAtFdCwd, "/a/b/c/h", 0));
  EXPECT_EQ(S().shortcut_skipped.value() - skipped2, 3u);
}

// A single-component path has no proper prefix: the probe must not run.
TEST_F(ShortcutTest, SingleComponentPathsSkipTheProbe) {
  auto fd = T().Open("/only", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  const uint64_t probes = S().shortcut_probes.value();
  ASSERT_OK(T().Statx(kAtFdCwd, "/only", 0));
  EXPECT_EQ(S().shortcut_probes.value() - probes, 0u);
}

// Resumed walks return the same errors a full walk would: a missing leaf
// under a cached ancestor is ENOENT through the shortcut too, and the
// permission outcome for an unprivileged cred is unchanged.
TEST_F(ShortcutTest, ResumedWalkPreservesErrorsAndPermissions) {
  ASSERT_OK(T().Mkdir("/p"));
  ASSERT_OK(T().Mkdir("/p/q"));
  ASSERT_OK(T().Chmod("/p/q", 0700));
  auto fd = T().Open("/p/q/secret", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Statx(kAtFdCwd, "/p/q/secret", 0));

  const uint64_t resumes = S().shortcut_resumes.value();
  EXPECT_ERR(T().Statx(kAtFdCwd, "/p/q/absent", 0), Errno::kENOENT);
  EXPECT_EQ(S().shortcut_resumes.value() - resumes, 1u);

  // An unprivileged cred has no prefix memo for root's warm chain; its
  // walk must take the ordinary slowpath and still be denied at /p/q.
  TaskPtr user = world_.UserTask(1000, 1000);
  EXPECT_ERR(user->Statx(kAtFdCwd, "/p/q/secret", 0), Errno::kEACCES);
}

// The prefix memo is per-credential: one cred's warm chain must never seed
// another cred's resume (that would skip the second cred's search checks).
TEST_F(ShortcutTest, PrefixMemoIsPerCredential) {
  ASSERT_OK(T().Mkdir("/shared"));
  ASSERT_OK(T().Mkdir("/shared/open"));
  ASSERT_OK(T().Chmod("/shared", 0755));
  ASSERT_OK(T().Chmod("/shared/open", 0755));
  auto fd = T().Open("/shared/open/f", kOCreat | kOWrite, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Statx(kAtFdCwd, "/shared/open/f", 0));

  TaskPtr user = world_.UserTask(1000, 1000);
  auto g = T().Open("/shared/open/g", kOCreat | kOWrite, 0644);
  ASSERT_OK(g);
  ASSERT_OK(T().Close(*g));
  const uint64_t resumes = S().shortcut_resumes.value();
  // The user's first look at g: the DLHT holds /shared/open (inserted under
  // root's walks, DLHT is namespace-global) but the USER's PCC has no memo
  // for it yet, so the probe must decline and the full slowpath runs — the
  // result is still correct.
  ASSERT_OK(user->Statx(kAtFdCwd, "/shared/open/g", 0));
  EXPECT_EQ(S().shortcut_resumes.value() - resumes, 0u);
}

// Signature-keyed prefix entries share the table with pointer-keyed ones
// without colliding, and go stale the moment the seq moves.
TEST(PrefixPcc, KeyingAndStaleness) {
  Pcc pcc(64 * 1024);
  Signature sig{};
  sig.words = {0x1111111111111111ull, 0x2222222222222222ull,
               0x3333333333333333ull, 0x4444444444444444ull};
  sig.bucket = 7;

  EXPECT_FALSE(pcc.LookupPrefix(sig, 5));
  pcc.InsertPrefix(sig, 5);
  EXPECT_TRUE(pcc.LookupPrefix(sig, 5));
  // Seq moved (ancestor invalidated): the memo is dead.
  EXPECT_FALSE(pcc.LookupPrefix(sig, 6));

  // A different signature maps to a different key.
  Signature other = sig;
  other.words[2] ^= 0xff;
  EXPECT_FALSE(pcc.LookupPrefix(other, 5));

  // The bucket hint is not part of signature identity (equality is words
  // only): the same words under a different bucket are the same entry.
  Signature rebucketed = sig;
  rebucketed.bucket = 99;
  EXPECT_TRUE(pcc.LookupPrefix(rebucketed, 5));

  // Keys never collide with the pointer-keyed space: user-space pointers
  // shifted right by 3 have bit 63 clear, prefix keys force it set — and
  // the reserved empty/busy encodings (0 and 1) are unreachable.
  const uint64_t key = Pcc::PrefixKeyFor(sig);
  EXPECT_NE(key, 0u);
  EXPECT_NE(key, 1u);
  EXPECT_NE(key & (1ull << 63), 0u);
}

// Rename/invalidation racing resumed walks: every observed result must be
// one that was true at some point, and the structures must audit clean.
// The mutator's subtree invalidations continually kill ancestors that
// readers are resuming from; the seq/coherence-gate validation then forces
// the root restart path (shortcut_restarts) rather than a wrong answer.
TEST_F(ShortcutTest, RenameRacesResumedWalks) {
  ASSERT_OK(T().Mkdir("/warm"));
  ASSERT_OK(T().Mkdir("/warm/sub"));
  constexpr int kFiles = 32;
  for (int i = 0; i < kFiles; ++i) {
    auto fd = T().Open("/warm/sub/f" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(T().Close(*fd));
  }
  ASSERT_OK(T().Statx(kAtFdCwd, "/warm/sub/f0", 0));  // warm the chain

  std::atomic<int> active{2};
  std::atomic<uint64_t> fresh{kFiles};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      TaskPtr task = world_.root->Fork();
      // Bounded iterations (not a stop flag): each fresh ENOENT may cache
      // a negative dentry, and an unbounded subtree would make the
      // mutator's per-rename invalidation pass quadratically slow.
      for (int it = 0; it < 2500; ++it) {
        // Never-seen leaves under a warm dir: each stat is a final-probe
        // miss that tries to resume from /warm/sub (or /warm) mid-rename.
        std::string p =
            "/warm/sub/n" + std::to_string(fresh.fetch_add(1));
        auto st = task->Statx(kAtFdCwd, p, 0);
        EXPECT_TRUE(!st.ok()) << "fresh name cannot exist";
        EXPECT_TRUE(st.error() == Errno::kENOENT)
            << ErrnoName(st.error()) << " for " << p;
        // And a real file that exists under exactly one of the two names.
        auto real = task->Statx(kAtFdCwd, "/warm/sub/f7", 0);
        EXPECT_TRUE(real.ok() || real.error() == Errno::kENOENT)
            << ErrnoName(real.error());
      }
      active.fetch_sub(1, std::memory_order_release);
    });
  }
  TaskPtr mut = world_.root->Fork();
  // Keep renaming until the readers drain; stop on the name-restoring
  // (odd) iteration so the tree settles at /warm.
  for (int i = 0;; ++i) {
    ASSERT_OK(mut->Rename((i & 1) != 0 ? "/warm2" : "/warm",
                          (i & 1) != 0 ? "/warm" : "/warm2"));
    if ((i & 1) != 0 && active.load(std::memory_order_acquire) == 0) {
      break;
    }
    if ((i & 63) == 0) {
      std::this_thread::yield();
    }
  }
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_GT(S().shortcut_resumes.value(), 0u);
  for (int i = 0; i < kFiles; ++i) {
    EXPECT_OK(T().Statx(kAtFdCwd, "/warm/sub/f" + std::to_string(i), 0));
  }
  obs::AuditReport report = world_.kernel->Audit();
  EXPECT_TRUE(report.clean()) << report.ToText();
}

// The new taxonomy rows flow through the observability snapshot: a resumed
// walk classifies as fast_miss_shortcut_hit, an eligible miss with nothing
// cached as fast_miss_shortcut_none.
TEST(ShortcutObs, TaxonomyRowsClassify) {
  TestWorld w(CacheConfig::Optimized(), nullptr, ObsConfig::Enabled());
  Task& t = *w.root;
  ASSERT_OK(t.Mkdir("/o"));
  ASSERT_OK(t.Mkdir("/o/d"));
  auto fd = t.Open("/o/d/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(t.Close(*fd));
  ASSERT_OK(t.Statx(kAtFdCwd, "/o/d/f", 0));
  auto g = t.Open("/o/d/g", kOCreat | kOWrite);
  ASSERT_OK(g);
  ASSERT_OK(t.Close(*g));

  obs::ObsSnapshot before = w.kernel->Observe();
  ASSERT_OK(t.Statx(kAtFdCwd, "/o/d/g", 0));  // resume from /o/d
  obs::ObsSnapshot after = w.kernel->Observe();
  auto row = [](const obs::ObsSnapshot& s, obs::WalkOutcome o) {
    return s.outcomes[static_cast<size_t>(o)];
  };
  EXPECT_EQ(row(after, obs::WalkOutcome::kFastMissShortcutHit) -
                row(before, obs::WalkOutcome::kFastMissShortcutHit),
            1u);

  // Cold caches, warm nothing: the probe runs and finds no ancestor.
  w.kernel->DropCaches();
  before = w.kernel->Observe();
  ASSERT_OK(t.Statx(kAtFdCwd, "/o/d/g", 0));
  after = w.kernel->Observe();
  EXPECT_EQ(row(after, obs::WalkOutcome::kFastMissShortcutNone) -
                row(before, obs::WalkOutcome::kFastMissShortcutNone),
            1u);
}

}  // namespace
}  // namespace dircache
