// Soak: everything at once — multithreaded syscall churn over mounts,
// namespaces, symlinks and permissions on the optimized kernel, with
// periodic cache eviction, followed by a full equivalence re-check of the
// final tree against the FS truth and an on-disk fsck.
#include <atomic>
#include <set>
#include <thread>

#include "src/storage/fsck.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

TEST(SoakTest, EverythingAtOnce) {
  DiskFsOptions opt;
  opt.num_blocks = 1 << 16;
  opt.max_inodes = 1 << 14;
  auto fs = std::make_shared<DiskFs>(opt);
  CacheConfig cfg = CacheConfig::Optimized();
  cfg.pcc_bytes = 4096;  // small: force thrash + last-hop + autosize
  cfg.pcc_autosize = true;
  TestWorld w(cfg, fs);
  Task& root = *w.root;
  ASSERT_OK(root.Mkdir("/work"));
  ASSERT_OK(root.Mkdir("/proc"));
  ASSERT_OK(root.Mount("/proc", std::make_shared<MemFs>()));
  ASSERT_OK(root.Symlink("/work", "/w"));

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Churn workers: create/write/rename/unlink in private subtrees (through
  // the symlink half the time).
  for (int id = 0; id < 2; ++id) {
    threads.emplace_back([&, id] {
      TaskPtr task = w.root->Fork();
      std::string base = "/work/t" + std::to_string(id);
      ASSERT_OK(task->Mkdir(base));
      Rng rng(static_cast<uint64_t>(id) + 101);
      for (int op = 0; op < 1500; ++op) {
        std::string prefix = rng.Chance(0.5)
                                 ? base
                                 : "/w/t" + std::to_string(id);
        std::string f = prefix + "/f" + std::to_string(rng.Below(24));
        switch (rng.Below(5)) {
          case 0: {
            auto fd = task->Open(f, kOCreat | kOWrite);
            if (fd.ok()) {
              (void)task->WriteFd(*fd, "soak");
              (void)task->Close(*fd);
            }
            break;
          }
          case 1:
            (void)task->Unlink(f);
            break;
          case 2:
            (void)task->Rename(f, prefix + "/r" +
                                      std::to_string(rng.Below(24)));
            break;
          case 3:
            (void)task->Statx(kAtFdCwd, f, 0);
            break;
          case 4: {
            auto dfd = task->Open(prefix, kORead | kODirectory);
            if (dfd.ok()) {
              while (true) {
                auto b = task->ReadDirFd(*dfd, 16);
                if (!b.ok() || b->empty()) {
                  break;
                }
              }
              (void)task->Close(*dfd);
            }
            break;
          }
        }
      }
    });
  }

  // Namespace-private observer.
  threads.emplace_back([&] {
    TaskPtr ns_task = w.root->Fork();
    ASSERT_OK(ns_task->UnshareMountNs());
    auto priv = std::make_shared<MemFs>();
    (void)priv->Create(MemFs::kRootIno, "flag", FileType::kRegular, 0644, 0,
                       0);
    ASSERT_OK(ns_task->Mkdir("/nsmnt"));
    ASSERT_OK(ns_task->Mount("/nsmnt", priv));
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_OK(ns_task->Statx(kAtFdCwd, "/nsmnt/flag", 0));
      (void)ns_task->Statx(kAtFdCwd, "/work/t0/f1", 0);
      (void)ns_task->Statx(kAtFdCwd, "/proc/nothing", 0);
    }
  });

  // Permission flipper + evictor.
  threads.emplace_back([&] {
    TaskPtr task = w.root->Fork();
    Rng rng(55);
    while (!stop.load(std::memory_order_acquire)) {
      (void)task->Chmod("/work", rng.Chance(0.5) ? 0755 : 0711);
      {
        std::unique_lock<std::shared_mutex> tree(w.kernel->tree_lock());
        w.kernel->dcache().Shrink(32);
      }
      std::this_thread::yield();
    }
  });

  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = 2; i < threads.size(); ++i) {
    threads[i].join();
  }
  ASSERT_OK(root.Chmod("/work", 0755));

  // Final coherence: the cached view must agree with the FS truth for
  // every file, via readdir *and* via direct lookups.
  for (int id = 0; id < 2; ++id) {
    std::string base = "/work/t" + std::to_string(id);
    std::set<std::string> listed;
    auto dfd = root.Open(base, kORead | kODirectory);
    ASSERT_OK(dfd);
    while (true) {
      auto b = root.ReadDirFd(*dfd, 32);
      ASSERT_OK(b);
      if (b->empty()) {
        break;
      }
      for (auto& e : *b) {
        listed.insert(e.name);
      }
    }
    ASSERT_OK(root.Close(*dfd));
    // Everything listed must stat, through both the real path and the
    // symlinked alias path.
    for (const auto& name : listed) {
      EXPECT_OK(root.Statx(kAtFdCwd, base + "/" + name, 0));
      EXPECT_OK(root.Statx(kAtFdCwd, "/w/t" + std::to_string(id) + "/" + name, 0));
    }
  }

  // And the on-disk state is consistent.
  FsckReport report = RunFsck(*fs);
  EXPECT_TRUE(report.clean()) << report.Summary();

  // The in-memory structures survived too: the invariant auditor
  // (DESIGN.md §10) cross-checks dcache/DLHT/LRU consistency at quiescence.
  obs::AuditReport audit = w.kernel->Audit();
  EXPECT_TRUE(audit.clean()) << audit.ToText();
  EXPECT_GT(audit.dentries_visited, 0u);
}

}  // namespace
}  // namespace dircache
