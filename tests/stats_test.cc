// ShardedCounter and CacheStats enumeration tests: exact multithreaded
// sums, benign Reset/Add races, cache-line layout, and the
// ForEachCounter-derived ResetAll/ToString invariants.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/align.h"
#include "src/util/stats.h"

namespace dircache {
namespace {

TEST(ShardedCounterTest, SingleThreadedExact) {
  ShardedCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ShardedCounterTest, ConcurrentAddsSumExactly) {
  // Exactness must hold regardless of shard assignment: even when two
  // threads collide on one slot, the slot itself is a relaxed atomic RMW.
  constexpr int kThreads = 64;  // > kStatsShardCount, forces collisions
  constexpr int kAddsPerThread = 20000;
  ShardedCounter c;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int n = 0; n < kAddsPerThread; ++n) {
        c.Add();
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(ShardedCounterTest, ResetRacesBenignly) {
  // A Reset concurrent with Adds may lose in-flight increments but must
  // never corrupt the counter: the final value is bounded by the number of
  // adds, and a quiescent Reset always reads back zero.
  ShardedCounter c;
  constexpr int kAdders = 4;
  constexpr int kAddsPerThread = 50000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < kAdders; ++i) {
    workers.emplace_back([&] {
      for (int n = 0; n < kAddsPerThread; ++n) {
        c.Add();
      }
    });
  }
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      c.Reset();
      (void)c.value();
    }
  });
  for (auto& w : workers) {
    w.join();
  }
  stop.store(true, std::memory_order_release);
  resetter.join();
  EXPECT_LE(c.value(), static_cast<uint64_t>(kAdders) * kAddsPerThread);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ShardedCounterTest, SlotsAreCacheLineAligned) {
  // The whole point of the sharding is that no two threads' slots share a
  // line: the counter must be one aligned line per shard, no more, no less.
  static_assert(alignof(ShardedCounter) == kCacheLineSize);
  static_assert(sizeof(ShardedCounter) == kStatsShardCount * kCacheLineSize);
  ShardedCounter c;
  EXPECT_EQ(reinterpret_cast<uintptr_t>(&c) % kCacheLineSize, 0u);
}

TEST(ShardedCounterTest, DistinctThreadsLandOnDistinctSlots) {
  // Two threads started back-to-back get consecutive shard ids, hence
  // distinct slots: their adds must both be visible in the sum (a same-slot
  // bug would also pass this, but a lost-slot bug in value() would not).
  ShardedCounter c;
  std::thread a([&] { c.Add(1); });
  std::thread b([&] { c.Add(2); });
  a.join();
  b.join();
  EXPECT_EQ(c.value(), 3u);
}

TEST(CacheStatsTest, ForEachCounterVisitsEveryToStringLabel) {
  // ToString is generated from the same enumeration as ForEachCounter, so
  // every visited label must appear in the output and vice versa (counted
  // via the "label=" occurrences).
  CacheStats stats;
  size_t visited = 0;
  stats.ForEachCounter([&](const char* label, ShardedCounter&) {
    ++visited;
    EXPECT_NE(stats.ToString().find(std::string(label) + "="),
              std::string::npos)
        << label;
  });
  EXPECT_GT(visited, 0u);
  std::string s = stats.ToString();
  size_t labels_in_string = 0;
  for (size_t pos = s.find('='); pos != std::string::npos;
       pos = s.find('=', pos + 1)) {
    ++labels_in_string;
  }
  EXPECT_EQ(labels_in_string, visited);
}

TEST(CacheStatsTest, ResetAllClearsEveryCounterToStringReports) {
  // Bump every counter through the enumeration, verify each shows nonzero
  // in ToString, then ResetAll and verify every counter reads zero — i.e.
  // no counter can appear in the report yet escape the reset.
  CacheStats stats;
  stats.ForEachCounter(
      [](const char*, ShardedCounter& c) { c.Add(7); });
  std::string s = stats.ToString();
  stats.ForEachCounter([&](const char* label, ShardedCounter& c) {
    EXPECT_EQ(c.value(), 7u) << label;
    EXPECT_NE(s.find(std::string(label) + "=7"), std::string::npos) << label;
  });
  stats.ResetAll();
  stats.ForEachCounter([](const char* label, ShardedCounter& c) {
    EXPECT_EQ(c.value(), 0u) << label;
  });
}

}  // namespace
}  // namespace dircache
