// Storage substrate tests: block device cost model, buffer cache behaviour,
// DiskFs on-disk structures, MemFs semantics.
#include <set>

#include <gtest/gtest.h>

#include "src/storage/block_device.h"
#include "src/storage/buffer_cache.h"
#include "src/storage/diskfs.h"
#include "src/storage/memfs.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

TEST(BlockDeviceTest, ChargesSeekAndSequentialCosts) {
  DiskModel model;
  model.seek_ns = 1000;
  model.sequential_ns = 10;
  model.transfer_ns = 1;
  BlockDevice dev(128, model);
  Block block{};
  VirtualClock clock;
  {
    IoChargeScope scope(&clock);
    ASSERT_OK(dev.Read(10, &block));   // seek
    ASSERT_OK(dev.Read(11, &block));   // sequential
    ASSERT_OK(dev.Read(50, &block));   // seek again
  }
  EXPECT_EQ(clock.nanos(), (1000 + 1) + (10 + 1) + (1000 + 1) * 1ull);
  EXPECT_EQ(dev.reads(), 3u);
  // Out-of-range access fails.
  EXPECT_ERR(dev.Read(1000, &block), Errno::kEIO);
}

TEST(BlockDeviceTest, DataRoundTrips) {
  BlockDevice dev(16);
  Block w{};
  w[0] = 0xAB;
  w[4095] = 0xCD;
  ASSERT_OK(dev.Write(3, w));
  Block r{};
  ASSERT_OK(dev.Read(3, &r));
  EXPECT_EQ(r[0], 0xAB);
  EXPECT_EQ(r[4095], 0xCD);
}

TEST(BufferCacheTest, HitAvoidsDevice) {
  BlockDevice dev(64);
  BufferCache cache(&dev, 8);
  {
    auto b = cache.Get(5);
    ASSERT_OK(b);
  }
  uint64_t reads_after_first = dev.reads();
  {
    auto b = cache.Get(5);
    ASSERT_OK(b);
  }
  EXPECT_EQ(dev.reads(), reads_after_first);  // served from cache
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BufferCacheTest, WritebackOnEvictionAndSync) {
  BlockDevice dev(64);
  BufferCache cache(&dev, 4);
  {
    auto b = cache.Get(1);
    ASSERT_OK(b);
    b->data()[0] = 42;
    b->MarkDirty();
  }
  ASSERT_OK(cache.Sync());
  Block raw{};
  ASSERT_OK(dev.Read(1, &raw));
  EXPECT_EQ(raw[0], 42);
  // Fill beyond capacity; dirty blocks must be written back when evicted.
  {
    auto b = cache.Get(2);
    ASSERT_OK(b);
    b->data()[7] = 7;
    b->MarkDirty();
  }
  for (uint64_t i = 10; i < 20; ++i) {
    auto b = cache.Get(i);
    ASSERT_OK(b);
  }
  EXPECT_LE(cache.cached_blocks(), 4u);
  ASSERT_OK(dev.Read(2, &raw));
  EXPECT_EQ(raw[7], 7);
}

TEST(BufferCacheTest, PinnedBlocksSurviveEviction) {
  BlockDevice dev(64);
  BufferCache cache(&dev, 2);
  auto pinned = cache.Get(1);
  ASSERT_OK(pinned);
  pinned->data()[0] = 9;
  for (uint64_t i = 10; i < 20; ++i) {
    auto b = cache.Get(i);
    ASSERT_OK(b);
  }
  // The pinned buffer is still valid and intact.
  EXPECT_EQ(pinned->data()[0], 9);
}

TEST(BufferCacheTest, DropEvictsClean) {
  BlockDevice dev(64);
  BufferCache cache(&dev, 16);
  for (uint64_t i = 0; i < 8; ++i) {
    auto b = cache.Get(i);
    ASSERT_OK(b);
  }
  cache.Drop();
  EXPECT_EQ(cache.cached_blocks(), 0u);
}

class DiskFsTest : public ::testing::Test {
 protected:
  DiskFsTest() {
    DiskFsOptions opt;
    opt.num_blocks = 1 << 14;
    opt.max_inodes = 1 << 12;
    fs_ = std::make_unique<DiskFs>(opt);
  }
  std::unique_ptr<DiskFs> fs_;
};

TEST_F(DiskFsTest, RootExists) {
  auto attr = fs_->GetAttr(DiskFs::kRootIno);
  ASSERT_OK(attr);
  EXPECT_EQ(attr->type, FileType::kDirectory);
  EXPECT_EQ(attr->mode, 0755);
}

TEST_F(DiskFsTest, CreateLookupRemove) {
  auto ino = fs_->Create(DiskFs::kRootIno, "file.txt", FileType::kRegular,
                         0644, 1000, 1000);
  ASSERT_OK(ino);
  auto found = fs_->Lookup(DiskFs::kRootIno, "file.txt");
  ASSERT_OK(found);
  EXPECT_EQ(*found, *ino);
  EXPECT_ERR(fs_->Lookup(DiskFs::kRootIno, "other"), Errno::kENOENT);
  EXPECT_ERR(fs_->Create(DiskFs::kRootIno, "file.txt", FileType::kRegular,
                         0644, 0, 0),
             Errno::kEEXIST);
  ASSERT_OK(fs_->Unlink(DiskFs::kRootIno, "file.txt"));
  EXPECT_ERR(fs_->Lookup(DiskFs::kRootIno, "file.txt"), Errno::kENOENT);
  // The inode is freed; reading it reports staleness.
  EXPECT_ERR(fs_->GetAttr(*ino), Errno::kESTALE);
}

TEST_F(DiskFsTest, LargeDirectorySpansBlocksAndSurvivesCacheDrop) {
  std::set<std::string> names;
  for (int i = 0; i < 1200; ++i) {
    std::string name = "entry_number_" + std::to_string(i);
    ASSERT_OK(fs_->Create(DiskFs::kRootIno, name, FileType::kRegular, 0644,
                          0, 0));
    names.insert(name);
  }
  fs_->DropCaches();  // force re-reads from the device
  // Every entry resolvable after the drop (on-disk format is the truth).
  ASSERT_OK(fs_->Lookup(DiskFs::kRootIno, "entry_number_0"));
  ASSERT_OK(fs_->Lookup(DiskFs::kRootIno, "entry_number_1199"));
  // Full readdir via cookies returns exactly the created set.
  std::set<std::string> listed;
  uint64_t cookie = 0;
  while (true) {
    auto r = fs_->ReadDir(DiskFs::kRootIno, cookie, 100);
    ASSERT_OK(r);
    for (auto& e : r->entries) {
      EXPECT_TRUE(listed.insert(e.name).second) << "dup " << e.name;
    }
    if (r->eof) {
      break;
    }
    cookie = r->next_offset;
  }
  EXPECT_EQ(listed, names);
}

TEST_F(DiskFsTest, RenameReplacesAndMoves) {
  ASSERT_OK(fs_->Create(DiskFs::kRootIno, "dir", FileType::kDirectory, 0755,
                        0, 0));
  auto dir = fs_->Lookup(DiskFs::kRootIno, "dir");
  ASSERT_OK(dir);
  auto a = fs_->Create(DiskFs::kRootIno, "a", FileType::kRegular, 0644, 0, 0);
  ASSERT_OK(a);
  auto b = fs_->Create(*dir, "b", FileType::kRegular, 0644, 0, 0);
  ASSERT_OK(b);
  // Move a into dir replacing b.
  ASSERT_OK(fs_->Rename(DiskFs::kRootIno, "a", *dir, "b"));
  auto moved = fs_->Lookup(*dir, "b");
  ASSERT_OK(moved);
  EXPECT_EQ(*moved, *a);
  EXPECT_ERR(fs_->GetAttr(*b), Errno::kESTALE);  // replaced target freed
  EXPECT_ERR(fs_->Lookup(DiskFs::kRootIno, "a"), Errno::kENOENT);
  // Directory rename with non-empty target fails.
  ASSERT_OK(fs_->Create(DiskFs::kRootIno, "d2", FileType::kDirectory, 0755,
                        0, 0));
  EXPECT_ERR(fs_->Rename(DiskFs::kRootIno, "d2", DiskFs::kRootIno, "dir"),
             Errno::kENOTEMPTY);
}

TEST_F(DiskFsTest, HardLinksAndNlink) {
  auto ino = fs_->Create(DiskFs::kRootIno, "orig", FileType::kRegular, 0644,
                         0, 0);
  ASSERT_OK(ino);
  ASSERT_OK(fs_->Link(DiskFs::kRootIno, "alias", *ino));
  auto attr = fs_->GetAttr(*ino);
  ASSERT_OK(attr);
  EXPECT_EQ(attr->nlink, 2u);
  ASSERT_OK(fs_->Unlink(DiskFs::kRootIno, "orig"));
  attr = fs_->GetAttr(*ino);
  ASSERT_OK(attr);  // still alive via alias
  EXPECT_EQ(attr->nlink, 1u);
  ASSERT_OK(fs_->Unlink(DiskFs::kRootIno, "alias"));
  EXPECT_ERR(fs_->GetAttr(*ino), Errno::kESTALE);
}

TEST_F(DiskFsTest, SymlinkStoresTarget) {
  auto ino = fs_->SymlinkCreate(DiskFs::kRootIno, "link", "/some/target",
                                0, 0);
  ASSERT_OK(ino);
  auto target = fs_->ReadLink(*ino);
  ASSERT_OK(target);
  EXPECT_EQ(*target, "/some/target");
  auto attr = fs_->GetAttr(*ino);
  ASSERT_OK(attr);
  EXPECT_EQ(attr->type, FileType::kSymlink);
}

TEST_F(DiskFsTest, FileDataIndirectBlocks) {
  auto ino = fs_->Create(DiskFs::kRootIno, "big", FileType::kRegular, 0644,
                         0, 0);
  ASSERT_OK(ino);
  // Write past the 10 direct blocks (40 KiB) into the indirect range.
  std::string chunk(kBlockSize, 'z');
  for (int blk = 0; blk < 14; ++blk) {
    auto w = fs_->Write(*ino, static_cast<uint64_t>(blk) * kBlockSize,
                        chunk);
    ASSERT_OK(w);
  }
  fs_->DropCaches();
  std::string out;
  auto r = fs_->Read(*ino, 12 * kBlockSize + 100, 64, &out);
  ASSERT_OK(r);
  EXPECT_EQ(out, std::string(64, 'z'));
  auto attr = fs_->GetAttr(*ino);
  ASSERT_OK(attr);
  EXPECT_EQ(attr->size, 14u * kBlockSize);
}

TEST_F(DiskFsTest, SetAttrTruncate) {
  auto ino = fs_->Create(DiskFs::kRootIno, "t", FileType::kRegular, 0666, 0,
                         0);
  ASSERT_OK(ino);
  ASSERT_OK(fs_->Write(*ino, 0, "0123456789"));
  AttrUpdate update;
  update.mode = 0600;
  update.uid = 7;
  ASSERT_OK(fs_->SetAttr(*ino, update));
  auto attr = fs_->GetAttr(*ino);
  ASSERT_OK(attr);
  EXPECT_EQ(attr->mode, 0600);
  EXPECT_EQ(attr->uid, 7u);
}

TEST_F(DiskFsTest, InodeExhaustionReportsEnospc) {
  DiskFsOptions tiny;
  tiny.num_blocks = 1 << 12;
  tiny.max_inodes = 16;
  DiskFs small(tiny);
  Status last = Status::Ok();
  for (int i = 0; i < 32; ++i) {
    auto r = small.Create(DiskFs::kRootIno, "f" + std::to_string(i),
                          FileType::kRegular, 0644, 0, 0);
    if (!r.ok()) {
      last = r.error();
      break;
    }
  }
  EXPECT_EQ(last.error(), Errno::kENOSPC);
}

TEST(MemFsTest, BasicTreeOperations) {
  MemFs fs;
  auto dir = fs.Create(MemFs::kRootIno, "sub", FileType::kDirectory, 0755, 0,
                       0);
  ASSERT_OK(dir);
  auto file = fs.Create(*dir, "f", FileType::kRegular, 0644, 0, 0);
  ASSERT_OK(file);
  ASSERT_OK(fs.Write(*file, 0, "data"));
  std::string out;
  ASSERT_OK(fs.Read(*file, 0, 10, &out));
  EXPECT_EQ(out, "data");
  EXPECT_FALSE(fs.WantsNegativeDentries());  // pseudo-FS behaviour (§5.2)
  EXPECT_ERR(fs.Rmdir(MemFs::kRootIno, "sub"), Errno::kENOTEMPTY);
  ASSERT_OK(fs.Unlink(*dir, "f"));
  ASSERT_OK(fs.Rmdir(MemFs::kRootIno, "sub"));
}

TEST(MemFsTest, ReadDirPagination) {
  MemFs fs;
  for (int i = 0; i < 25; ++i) {
    ASSERT_OK(fs.Create(MemFs::kRootIno, "e" + std::to_string(i),
                        FileType::kRegular, 0644, 0, 0));
  }
  std::set<std::string> seen;
  uint64_t cookie = 0;
  while (true) {
    auto r = fs.ReadDir(MemFs::kRootIno, cookie, 7);
    ASSERT_OK(r);
    for (auto& e : r->entries) {
      seen.insert(e.name);
    }
    if (r->eof) {
      break;
    }
    cookie = r->next_offset;
  }
  EXPECT_EQ(seen.size(), 25u);
}

}  // namespace
}  // namespace dircache
