// POSIX-surface tests, parameterized across cache configurations: every
// behaviour here must be identical with and without the paper's
// optimizations (transparency is the paper's core compatibility claim).
#include <algorithm>
#include <set>

#include "src/server/batch.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

enum class Variant {
  kBaseline,
  kOptimized,
  kFastpathOnly,
  kDirCompleteOnly,
  kNegativeOnly,
  kLexical,
  kGlobalLockEra,
  kFineGrainedEra,
  kBaselineMemfs,   // POSIX surface over the pseudo FS as the root
  kOptimizedMemfs,
};

bool UsesMemfsRoot(Variant v) {
  return v == Variant::kBaselineMemfs || v == Variant::kOptimizedMemfs;
}

CacheConfig ConfigFor(Variant v) {
  switch (v) {
    case Variant::kBaseline:
    case Variant::kBaselineMemfs:
      return CacheConfig::Baseline();
    case Variant::kOptimized:
    case Variant::kOptimizedMemfs:
      return CacheConfig::Optimized();
    case Variant::kFastpathOnly: {
      CacheConfig c;
      c.fastpath = true;
      return c;
    }
    case Variant::kDirCompleteOnly: {
      CacheConfig c;
      c.dir_completeness = true;
      return c;
    }
    case Variant::kNegativeOnly: {
      CacheConfig c;
      c.negative_on_unlink = true;
      c.negative_on_pseudo_fs = true;
      c.deep_negative = true;
      return c;
    }
    case Variant::kLexical: {
      CacheConfig c = CacheConfig::Optimized();
      c.dotdot = DotDotMode::kLexical;
      return c;
    }
    case Variant::kGlobalLockEra: {
      CacheConfig c;
      c.locking = LockingMode::kGlobalLock;
      return c;
    }
    case Variant::kFineGrainedEra: {
      CacheConfig c;
      c.locking = LockingMode::kFineGrained;
      return c;
    }
  }
  return CacheConfig::Baseline();
}

class SyscallTest : public ::testing::TestWithParam<Variant> {
 protected:
  SyscallTest()
      : world_(ConfigFor(GetParam()),
               UsesMemfsRoot(GetParam())
                   ? std::make_shared<MemFs>(
                         MemFs::Options{/*wants_negative_dentries=*/false,
                                        "memroot"})
                   : nullptr) {}

  Task& T() { return *world_.root; }
  TestWorld world_;
};

TEST_P(SyscallTest, MkdirStatRoundTrip) {
  ASSERT_OK(T().Mkdir("/a"));
  ASSERT_OK(T().Mkdir("/a/b", 0700));
  auto st = T().Statx(kAtFdCwd, "/a/b", 0);
  ASSERT_OK(st);
  EXPECT_TRUE(st->IsDir());
  EXPECT_EQ(st->mode, 0700);
  EXPECT_EQ(st->uid, 0u);
}

TEST_P(SyscallTest, CreateWriteReadFile) {
  ASSERT_OK(T().Mkdir("/d"));
  auto fd = T().Open("/d/file.txt", kOCreat | kORdWr, 0644);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "hello world"));
  ASSERT_OK(T().Lseek(*fd, 0));
  std::string buf;
  auto n = T().ReadFd(*fd, 64, &buf);
  ASSERT_OK(n);
  EXPECT_EQ(buf, "hello world");
  ASSERT_OK(T().Close(*fd));
  auto st = T().Statx(kAtFdCwd, "/d/file.txt", 0);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 11u);
  EXPECT_TRUE(st->IsRegular());
}

TEST_P(SyscallTest, RepeatedStatsHitCache) {
  ASSERT_OK(T().Mkdir("/x"));
  ASSERT_OK(T().Mkdir("/x/y"));
  auto fd = T().Open("/x/y/z", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(T().Statx(kAtFdCwd, "/x/y/z", 0));
  }
  if (world_.kernel->config().fastpath) {
    // After warmup, almost all of those resolve on the fastpath.
    EXPECT_GT(world_.kernel->stats().fastpath_hits.value(), 90u);
  }
}

TEST_P(SyscallTest, EnoentOnMissing) {
  ASSERT_OK(T().Mkdir("/p"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/p/missing", 0), Errno::kENOENT);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/p/missing", 0), Errno::kENOENT);  // cached negative
  EXPECT_ERR(T().Statx(kAtFdCwd, "/nope/deep/path", 0), Errno::kENOENT);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/nope/deep/path", 0), Errno::kENOENT);
}

TEST_P(SyscallTest, EnotdirOnFileComponent) {
  auto fd = T().Open("/plain", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/plain/sub", 0), Errno::kENOTDIR);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/plain/sub", 0), Errno::kENOTDIR);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/plain/sub/deeper", 0), Errno::kENOTDIR);
}

TEST_P(SyscallTest, UnlinkRemovesAndNegativeCaches) {
  auto fd = T().Open("/victim", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Unlink("/victim"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/victim", 0), Errno::kENOENT);
  EXPECT_ERR(T().Unlink("/victim"), Errno::kENOENT);
  // Re-create over the (possibly cached-negative) name.
  auto fd2 = T().Open("/victim", kOCreat | kOWrite);
  ASSERT_OK(fd2);
  ASSERT_OK(T().Close(*fd2));
  EXPECT_OK(T().Statx(kAtFdCwd, "/victim", 0));
}

TEST_P(SyscallTest, RmdirSemantics) {
  ASSERT_OK(T().Mkdir("/dir"));
  ASSERT_OK(T().Mkdir("/dir/sub"));
  EXPECT_ERR(T().Rmdir("/dir"), Errno::kENOTEMPTY);
  ASSERT_OK(T().Rmdir("/dir/sub"));
  ASSERT_OK(T().Rmdir("/dir"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/dir", 0), Errno::kENOENT);
  auto fd = T().Open("/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_ERR(T().Rmdir("/f"), Errno::kENOTDIR);
  EXPECT_ERR(T().Unlink("/"), Errno::kEINVAL);
}

TEST_P(SyscallTest, RenameFileBasic) {
  ASSERT_OK(T().Mkdir("/a"));
  ASSERT_OK(T().Mkdir("/b"));
  auto fd = T().Open("/a/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "data"));
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Rename("/a/f", "/b/g"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/a/f", 0), Errno::kENOENT);
  auto st = T().Statx(kAtFdCwd, "/b/g", 0);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 4u);
}

TEST_P(SyscallTest, RenameDirectoryMovesSubtree) {
  ASSERT_OK(T().Mkdir("/src"));
  ASSERT_OK(T().Mkdir("/src/kid"));
  auto fd = T().Open("/src/kid/leaf", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  // Warm the caches on the old paths.
  ASSERT_OK(T().Statx(kAtFdCwd, "/src/kid/leaf", 0));
  ASSERT_OK(T().Statx(kAtFdCwd, "/src/kid/leaf", 0));
  ASSERT_OK(T().Rename("/src", "/dst"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/src/kid/leaf", 0), Errno::kENOENT);
  EXPECT_OK(T().Statx(kAtFdCwd, "/dst/kid/leaf", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/dst/kid/leaf", 0));
}

TEST_P(SyscallTest, RenameOntoExistingFileReplaces) {
  auto mk = [&](std::string_view p, std::string_view data) {
    auto fd = T().Open(p, kOCreat | kOWrite | kOTrunc);
    ASSERT_OK(fd);
    ASSERT_OK(T().WriteFd(*fd, data));
    ASSERT_OK(T().Close(*fd));
  };
  mk("/one", "111");
  mk("/two", "22222");
  ASSERT_OK(T().Rename("/one", "/two"));
  auto st = T().Statx(kAtFdCwd, "/two", 0);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 3u);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/one", 0), Errno::kENOENT);
}

TEST_P(SyscallTest, RenameDirIntoOwnSubtreeFails) {
  ASSERT_OK(T().Mkdir("/top"));
  ASSERT_OK(T().Mkdir("/top/mid"));
  EXPECT_ERR(T().Rename("/top", "/top/mid/inner"), Errno::kEINVAL);
}

TEST_P(SyscallTest, HardLinksShareInode) {
  auto fd = T().Open("/orig", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "shared"));
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Link("/orig", "/alias"));
  auto st1 = T().Statx(kAtFdCwd, "/orig", 0);
  auto st2 = T().Statx(kAtFdCwd, "/alias", 0);
  ASSERT_OK(st1);
  ASSERT_OK(st2);
  EXPECT_EQ(st1->ino, st2->ino);
  EXPECT_EQ(st2->nlink, 2u);
  ASSERT_OK(T().Unlink("/orig"));
  auto st3 = T().Statx(kAtFdCwd, "/alias", 0);
  ASSERT_OK(st3);
  EXPECT_EQ(st3->nlink, 1u);
}

TEST_P(SyscallTest, SymlinkResolution) {
  ASSERT_OK(T().Mkdir("/real"));
  auto fd = T().Open("/real/file", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Symlink("/real", "/link"));
  // stat follows; lstat does not.
  auto st = T().Statx(kAtFdCwd, "/link", 0);
  ASSERT_OK(st);
  EXPECT_TRUE(st->IsDir());
  auto lst = T().Statx(kAtFdCwd, "/link", kAtSymlinkNoFollow);
  ASSERT_OK(lst);
  EXPECT_TRUE(lst->IsSymlink());
  // Resolution through the link (repeatedly — exercises alias caching).
  for (int i = 0; i < 5; ++i) {
    EXPECT_OK(T().Statx(kAtFdCwd, "/link/file", 0));
  }
  auto target = T().ReadLink("/link");
  ASSERT_OK(target);
  EXPECT_EQ(*target, "/real");
}

TEST_P(SyscallTest, RelativeSymlink) {
  ASSERT_OK(T().Mkdir("/dir"));
  ASSERT_OK(T().Mkdir("/dir/sub"));
  auto fd = T().Open("/dir/sub/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Symlink("sub", "/dir/rel"));
  EXPECT_OK(T().Statx(kAtFdCwd, "/dir/rel/f", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/dir/rel/f", 0));
}

TEST_P(SyscallTest, SymlinkLoopsReturnEloop) {
  ASSERT_OK(T().Symlink("/self", "/self"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/self/x", 0), Errno::kELOOP);
  ASSERT_OK(T().Symlink("/ping", "/pong"));
  ASSERT_OK(T().Symlink("/pong", "/ping"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/ping/x", 0), Errno::kELOOP);
}

TEST_P(SyscallTest, DotAndDotDot) {
  ASSERT_OK(T().Mkdir("/w"));
  ASSERT_OK(T().Mkdir("/w/in"));
  auto fd = T().Open("/w/file", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_OK(T().Statx(kAtFdCwd, "/w/./file", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/w/in/../file", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/w/in/../file", 0));  // repeat: fastpath dot-dot
  EXPECT_OK(T().Statx(kAtFdCwd, "/w/in/../../w/file", 0));
  // ".." above root stays at root.
  EXPECT_OK(T().Statx(kAtFdCwd, "/../../w/file", 0));
}

TEST_P(SyscallTest, ChdirAndRelativePaths) {
  ASSERT_OK(T().Mkdir("/home"));
  ASSERT_OK(T().Mkdir("/home/alice"));
  auto fd = T().Open("/home/alice/doc", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Chdir("/home/alice"));
  auto cwd = T().Getcwd();
  ASSERT_OK(cwd);
  EXPECT_EQ(*cwd, "/home/alice");
  EXPECT_OK(T().Statx(kAtFdCwd, "doc", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "doc", 0));  // relative fastpath (resumed hash state)
  EXPECT_OK(T().Statx(kAtFdCwd, "./doc", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "../alice/doc", 0));
  ASSERT_OK(T().Chdir("/"));
}

TEST_P(SyscallTest, OpenAtAndFstatAt) {
  ASSERT_OK(T().Mkdir("/base"));
  auto dfd = T().Open("/base", kORead | kODirectory);
  ASSERT_OK(dfd);
  auto fd = T().OpenAt(*dfd, "child", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  auto st = T().FstatAt(*dfd, "child", 0);
  ASSERT_OK(st);
  EXPECT_TRUE(st->IsRegular());
  ASSERT_OK(T().UnlinkAt(*dfd, "child"));
  EXPECT_ERR(T().FstatAt(*dfd, "child", 0), Errno::kENOENT);
  ASSERT_OK(T().Close(*dfd));
}

TEST_P(SyscallTest, StatxUnifiedEntryPoint) {
  ASSERT_OK(T().Mkdir("/sx"));
  auto fd = T().Open("/sx/file", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "abc"));
  ASSERT_OK(T().Symlink("/sx/file", "/sx/link"));

  // Plain path stat follows symlinks; NOFOLLOW stats the link itself.
  auto st = T().Statx(kAtFdCwd, "/sx/link", 0);
  ASSERT_OK(st);
  EXPECT_TRUE(st->IsRegular());
  EXPECT_EQ(st->size, 3u);
  auto lst = T().Statx(kAtFdCwd, "/sx/link", kAtSymlinkNoFollow);
  ASSERT_OK(lst);
  EXPECT_TRUE(lst->IsSymlink());
  auto via_lstat = T().Statx(kAtFdCwd, "/sx/link", kAtSymlinkNoFollow);
  ASSERT_OK(via_lstat);
  EXPECT_EQ(lst->ino, via_lstat->ino);

  // Empty path + kAtEmptyPath stats the fd itself (fstat shape)...
  auto self = T().Statx(*fd, "", kAtEmptyPath);
  ASSERT_OK(self);
  EXPECT_EQ(self->ino, st->ino);
  // ...and kAtFdCwd resolves to the working directory.
  ASSERT_OK(T().Chdir("/sx"));
  auto cwd = T().Statx(kAtFdCwd, "", kAtEmptyPath);
  ASSERT_OK(cwd);
  EXPECT_TRUE(cwd->IsDir());
  ASSERT_OK(T().Chdir("/"));

  // Validation: unknown flag bits and unknown mask bits are EINVAL; an
  // empty path without kAtEmptyPath stays ENOENT (FstatAt compatibility).
  EXPECT_ERR(T().Statx(kAtFdCwd, "/sx/file", 0x8000), Errno::kEINVAL);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/sx/file", 0, 0x40000u), Errno::kEINVAL);
  EXPECT_ERR(T().Statx(kAtFdCwd, "", 0), Errno::kENOENT);
  EXPECT_ERR(T().Statx(999, "", kAtEmptyPath), Errno::kEBADF);

  // A reduced mask validates but still fills every field (documented
  // simulation behaviour: the mask gates nothing, it is checked only).
  auto masked = T().Statx(kAtFdCwd, "/sx/file", 0, kStatxIno | kStatxSize);
  ASSERT_OK(masked);
  EXPECT_EQ(masked->ino, st->ino);
  EXPECT_EQ(masked->size, 3u);
  ASSERT_OK(T().Close(*fd));
}

TEST_P(SyscallTest, ReaddirListsEntries) {
  ASSERT_OK(T().Mkdir("/ls"));
  std::set<std::string> expect;
  for (int i = 0; i < 25; ++i) {
    std::string name = "entry" + std::to_string(i);
    auto fd = T().Open("/ls/" + name, kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(T().Close(*fd));
    expect.insert(name);
  }
  ASSERT_OK(T().Mkdir("/ls/subdir"));
  expect.insert("subdir");

  for (int round = 0; round < 3; ++round) {  // round 2+ may serve cached
    auto dfd = T().Open("/ls", kORead | kODirectory);
    ASSERT_OK(dfd);
    std::set<std::string> seen;
    while (true) {
      auto batch = T().ReadDirFd(*dfd, 7);
      ASSERT_OK(batch);
      if (batch->empty()) {
        break;
      }
      for (auto& e : *batch) {
        EXPECT_TRUE(seen.insert(e.name).second) << "duplicate " << e.name;
        if (e.name == "subdir") {
          EXPECT_EQ(e.type, FileType::kDirectory);
        }
      }
    }
    EXPECT_EQ(seen, expect) << "round " << round;
    ASSERT_OK(T().Close(*dfd));
  }
}

TEST_P(SyscallTest, ReaddirSeesConcurrentCreateAndUnlink) {
  ASSERT_OK(T().Mkdir("/mix"));
  for (int i = 0; i < 10; ++i) {
    auto fd = T().Open("/mix/f" + std::to_string(i), kOCreat | kOWrite);
    ASSERT_OK(fd);
    ASSERT_OK(T().Close(*fd));
  }
  // Full listing to (possibly) set DIR_COMPLETE.
  auto dfd = T().Open("/mix", kORead | kODirectory);
  ASSERT_OK(dfd);
  while (true) {
    auto b = T().ReadDirFd(*dfd, 64);
    ASSERT_OK(b);
    if (b->empty()) {
      break;
    }
  }
  ASSERT_OK(T().Close(*dfd));
  // Mutate, then list again; results must reflect the changes.
  ASSERT_OK(T().Unlink("/mix/f3"));
  auto fd = T().Open("/mix/fresh", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  dfd = T().Open("/mix", kORead | kODirectory);
  ASSERT_OK(dfd);
  std::set<std::string> seen;
  while (true) {
    auto b = T().ReadDirFd(*dfd, 64);
    ASSERT_OK(b);
    if (b->empty()) {
      break;
    }
    for (auto& e : *b) {
      seen.insert(e.name);
    }
  }
  ASSERT_OK(T().Close(*dfd));
  EXPECT_EQ(seen.count("f3"), 0u);
  EXPECT_EQ(seen.count("fresh"), 1u);
  EXPECT_EQ(seen.size(), 10u);
}

TEST_P(SyscallTest, TruncateAndAppend) {
  auto fd = T().Open("/t", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "0123456789"));
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Truncate("/t", 4));
  auto st = T().Statx(kAtFdCwd, "/t", 0);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 4u);
  auto afd = T().Open("/t", kOWrite | kOAppend);
  ASSERT_OK(afd);
  ASSERT_OK(T().WriteFd(*afd, "xy"));
  ASSERT_OK(T().Close(*afd));
  st = T().Statx(kAtFdCwd, "/t", 0);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 6u);
}

TEST_P(SyscallTest, OpenFlagsSemantics) {
  EXPECT_ERR(T().Open("/nothere", kORead), Errno::kENOENT);
  auto fd = T().Open("/excl", kOCreat | kOExcl | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_ERR(T().Open("/excl", kOCreat | kOExcl | kOWrite), Errno::kEEXIST);
  ASSERT_OK(T().Mkdir("/adir"));
  EXPECT_ERR(T().Open("/adir", kOWrite), Errno::kEISDIR);
  EXPECT_ERR(T().Open("/excl", kORead | kODirectory), Errno::kENOTDIR);
  ASSERT_OK(T().Symlink("/excl", "/lnk"));
  EXPECT_ERR(T().Open("/lnk", kORead | kONoFollow), Errno::kELOOP);
  EXPECT_OK(T().Open("/lnk", kORead));
}

TEST_P(SyscallTest, UnlinkedButOpenFileStillUsable) {
  auto fd = T().Open("/ghost", kOCreat | kORdWr);
  ASSERT_OK(fd);
  ASSERT_OK(T().WriteFd(*fd, "spooky"));
  ASSERT_OK(T().Unlink("/ghost"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/ghost", 0), Errno::kENOENT);
  auto st = T().Fstat(*fd);
  ASSERT_OK(st);
  EXPECT_EQ(st->size, 6u);
  ASSERT_OK(T().Close(*fd));
}

TEST_P(SyscallTest, DeepPathsWork) {
  std::string path;
  for (int i = 0; i < 12; ++i) {
    path += "/level" + std::to_string(i);
    ASSERT_OK(T().Mkdir(path));
  }
  auto fd = T().Open(path + "/leaf", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  for (int i = 0; i < 3; ++i) {
    EXPECT_OK(T().Statx(kAtFdCwd, path + "/leaf", 0));
  }
}

TEST_P(SyscallTest, TrailingSlashRequiresDirectory) {
  ASSERT_OK(T().Mkdir("/sd"));
  auto fd = T().Open("/sd/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_OK(T().Statx(kAtFdCwd, "/sd/", 0));
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SyscallTest,
    ::testing::Values(Variant::kBaseline, Variant::kOptimized,
                      Variant::kFastpathOnly, Variant::kDirCompleteOnly,
                      Variant::kNegativeOnly, Variant::kLexical,
                      Variant::kGlobalLockEra, Variant::kFineGrainedEra,
                      Variant::kBaselineMemfs, Variant::kOptimizedMemfs),
    [](const ::testing::TestParamInfo<Variant>& info) {
      switch (info.param) {
        case Variant::kBaseline:
          return "Baseline";
        case Variant::kOptimized:
          return "Optimized";
        case Variant::kFastpathOnly:
          return "FastpathOnly";
        case Variant::kDirCompleteOnly:
          return "DirCompleteOnly";
        case Variant::kNegativeOnly:
          return "NegativeOnly";
        case Variant::kLexical:
          return "Lexical";
        case Variant::kGlobalLockEra:
          return "GlobalLockEra";
        case Variant::kFineGrainedEra:
          return "FineGrainedEra";
        case Variant::kBaselineMemfs:
          return "BaselineMemfs";
        case Variant::kOptimizedMemfs:
          return "OptimizedMemfs";
      }
      return "Unknown";
    });

// --- errno surface ---------------------------------------------------------
// The batch ABI carries failures as negated errnos in `Cqe::res`
// (io_uring's convention). Every Errno the kernel can produce must
// round-trip through that encoding and come back out with the same
// unified `ErrnoName` spelling the Status surface uses.
TEST(ErrnoSurface, NegativeErrnoRoundTripsThroughCqe) {
  const Errno all[] = {
      Errno::kEPERM,   Errno::kENOENT, Errno::kEIO,     Errno::kEBADF,
      Errno::kEACCES,  Errno::kEBUSY,  Errno::kEEXIST,  Errno::kEXDEV,
      Errno::kENODEV,  Errno::kENOTDIR, Errno::kEISDIR, Errno::kEINVAL,
      Errno::kENFILE,  Errno::kEMFILE, Errno::kENOSPC,  Errno::kEROFS,
      Errno::kEMLINK,  Errno::kERANGE, Errno::kENAMETOOLONG,
      Errno::kENOTEMPTY, Errno::kELOOP, Errno::kEOVERFLOW, Errno::kESTALE,
  };
  for (Errno e : all) {
    server::Cqe c{};
    c.res = -static_cast<int32_t>(e);
    EXPECT_FALSE(c.ok());
    EXPECT_EQ(c.error(), e);
    EXPECT_EQ(c.error_name(), ErrnoName(e));
    EXPECT_NE(c.error_name(), "E???") << static_cast<int>(e);
  }
  server::Cqe ok{};
  ok.res = 0;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.error(), Errno::kOk);
  server::Cqe fd{};
  fd.res = 42;  // a positive result (an fd, a readdir count) is success
  EXPECT_TRUE(fd.ok());
  EXPECT_EQ(fd.error(), Errno::kOk);
}

}  // namespace
}  // namespace dircache
