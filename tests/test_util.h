// Shared test fixtures: a booted kernel with a DiskFs root and an init task.
#ifndef DIRCACHE_TESTS_TEST_UTIL_H_
#define DIRCACHE_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/storage/diskfs.h"
#include "src/storage/memfs.h"
#include "src/vfs/kernel.h"
#include "src/vfs/lsm_modules.h"
#include "src/vfs/task.h"

namespace dircache {

inline CacheConfig BaselineConfig() { return CacheConfig::Baseline(); }
inline CacheConfig OptimizedConfig() { return CacheConfig::Optimized(); }

// A booted kernel: DiskFs at /, a root task, ready for syscalls.
struct TestWorld {
  explicit TestWorld(CacheConfig cfg = CacheConfig::Baseline(),
                     std::shared_ptr<FileSystem> rootfs = nullptr,
                     ObsConfig obs = {}) {
    KernelConfig kc;
    kc.cache = cfg;
    kc.obs = obs;
    kc.signature_seed = 0x7e57;  // reproducible
    kernel = std::make_unique<Kernel>(kc);
    if (rootfs == nullptr) {
      DiskFsOptions opt;
      opt.num_blocks = 1 << 16;   // 256 MiB
      opt.max_inodes = 1 << 15;
      rootfs = std::make_shared<DiskFs>(opt);
    }
    EXPECT_TRUE(kernel->MountRootFs(std::move(rootfs)).ok());
    root = kernel->CreateInitTask(MakeCred(0, 0));
  }

  ~TestWorld() {
    root.reset();
    kernel.reset();
  }

  // A task running as the given non-root user.
  TaskPtr UserTask(Uid uid, Gid gid, std::vector<Gid> groups = {},
                   std::string label = "") {
    TaskPtr t = root->Fork();
    t->SetCred(MakeCred(uid, gid, std::move(groups), std::move(label)));
    return t;
  }

  std::unique_ptr<Kernel> kernel;
  TaskPtr root;
};

#define ASSERT_OK(expr)                                              \
  do {                                                               \
    auto&& _r = (expr);                                                \
    ASSERT_TRUE(_r.ok()) << "error: " << _r.error_name();           \
  } while (0)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    auto&& _r = (expr);                                                \
    EXPECT_TRUE(_r.ok()) << "error: " << _r.error_name();           \
  } while (0)

#define EXPECT_ERR(expr, err)                                        \
  do {                                                               \
    auto&& _r = (expr);                                                \
    EXPECT_FALSE(_r.ok());                                           \
    EXPECT_EQ(_r.error(), (err))                                     \
        << "got " << _r.error_name();                                  \
  } while (0)

}  // namespace dircache

#endif  // DIRCACHE_TESTS_TEST_UTIL_H_
