// Unit tests for the utility substrate: intrusive lists, lock-free hash
// chains, locks/seqcounts, RNG, Result, CRC32C.
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "src/util/crc32.h"
#include "src/util/hlist.h"
#include "src/util/intrusive_list.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/spinlock.h"

namespace dircache {
namespace {

struct Item {
  int value = 0;
  ListNode node;
  HNode hnode;
};

TEST(IntrusiveListTest, PushPopOrder) {
  IntrusiveList<Item, &Item::node> list;
  Item a;
  Item b;
  Item c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.Front()->value, 3);
  EXPECT_EQ(list.Back()->value, 2);
  EXPECT_EQ(list.CountSlow(), 3u);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, UnlinkFromMiddle) {
  IntrusiveList<Item, &Item::node> list;
  Item a;
  Item b;
  Item c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  b.node.Unlink();
  EXPECT_EQ(list.CountSlow(), 2u);
  EXPECT_FALSE(b.node.linked());
  // Unlink is idempotent on an unlinked node.
  b.node.Unlink();
  std::vector<int> seen;
  for (Item* i : list) {
    seen.push_back(i->value);
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 3}));
  EXPECT_EQ(list.PrevOf(&c), &a);
  EXPECT_EQ(list.PrevOf(&a), nullptr);
  a.node.Unlink();
  c.node.Unlink();
}

TEST(IntrusiveListTest, MoveToFront) {
  IntrusiveList<Item, &Item::node> list;
  Item a;
  Item b;
  a.value = 1;
  b.value = 2;
  list.PushBack(&a);
  list.PushBack(&b);
  list.MoveToFront(&b);
  EXPECT_EQ(list.Front()->value, 2);
  a.node.Unlink();
  b.node.Unlink();
}

TEST(HListTest, PushRemoveTraverse) {
  HListHead head;
  Item a;
  Item b;
  Item c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  head.PushFront(&a.hnode);
  head.PushFront(&b.hnode);
  head.PushFront(&c.hnode);
  std::vector<int> seen;
  for (HNode* n = head.First(); n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    seen.push_back(FromHNode<Item, &Item::hnode>(n)->value);
  }
  EXPECT_EQ(seen, (std::vector<int>{3, 2, 1}));
  head.Remove(&b.hnode);
  EXPECT_FALSE(b.hnode.hashed);
  // A removed node keeps its next pointer (RCU discipline).
  EXPECT_EQ(b.hnode.next.load(), &a.hnode);
  seen.clear();
  for (HNode* n = head.First(); n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    seen.push_back(FromHNode<Item, &Item::hnode>(n)->value);
  }
  EXPECT_EQ(seen, (std::vector<int>{3, 1}));
  head.Remove(&c.hnode);  // head removal
  EXPECT_EQ(head.First(), &a.hnode);
  head.Remove(&a.hnode);
  EXPECT_EQ(head.First(), nullptr);
}

TEST(SeqCountTest, ReaderSeesWriterInProgress) {
  SeqCount seq;
  uint32_t s = seq.ReadBegin();
  EXPECT_FALSE(seq.ReadRetry(s));
  seq.WriteBegin();
  // A reader sampling now would spin; validate-after detects the write.
  EXPECT_TRUE(seq.ReadRetry(s));
  seq.WriteEnd();
  EXPECT_TRUE(seq.ReadRetry(s));  // version moved
  uint32_t s2 = seq.ReadBegin();
  EXPECT_FALSE(seq.ReadRetry(s2));
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 40000);
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(RngTest, DeterministicAndDistributed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(8);
  EXPECT_NE(a.Next(), c.Next());
  // Below() respects its bound and covers the range.
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = c.Below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.error(), Errno::kOk);
  Result<int> err = Errno::kENOENT;
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), Errno::kENOENT);
  EXPECT_EQ(err.value_or(-1), -1);
  EXPECT_EQ(ErrnoName(Errno::kENOTDIR), "ENOTDIR");
  Status st;
  EXPECT_TRUE(st.ok());
  Status bad = Errno::kEACCES;
  EXPECT_FALSE(bad.ok());
}

TEST(Crc32Test, KnownVectorsAndIncrementality) {
  // CRC32C("123456789") = 0xE3069283 (Castagnoli standard check value).
  EXPECT_EQ(Crc32c(0, "123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(0, "", 0), 0u);
  // Different data -> different checksum (overwhelmingly).
  EXPECT_NE(Crc32c(0, "hello", 5), Crc32c(0, "hellp", 5));
}

}  // namespace
}  // namespace dircache
