// VFS plumbing: the inode cache, credentials, PathHandle reference
// management, the syscall profiler, and kernel teardown hygiene.
#include "src/core/pcc.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

TEST(InodeCacheTest, IgetDedupsAndRefCounts) {
  TestWorld w;
  auto fd = w.root->Open("/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->Close(*fd));
  auto st = w.root->Statx(kAtFdCwd, "/f", 0);
  ASSERT_OK(st);
  // Reaching into the superblock: same ino yields the same object.
  Dentry* d = w.kernel->dcache().LookupRef(w.root->root().dentry(), "f");
  ASSERT_NE(d, nullptr);
  SuperBlock* sb = d->sb();
  auto i1 = sb->Iget(st->ino);
  auto i2 = sb->Iget(st->ino);
  ASSERT_OK(i1);
  ASSERT_OK(i2);
  EXPECT_EQ(*i1, *i2);
  EXPECT_EQ((*i1)->ino(), st->ino);
  sb->Iput(*i1);
  sb->Iput(*i2);
  w.kernel->dcache().Dput(d);
  EXPECT_GE(sb->cached_inodes(), 1u);
}

TEST(InodeCacheTest, AttrsMirrorSyscalls) {
  TestWorld w;
  auto fd = w.root->Open("/attrs", kOCreat | kOWrite, 0640);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->WriteFd(*fd, "12345"));
  ASSERT_OK(w.root->Close(*fd));
  ASSERT_OK(w.root->Chmod("/attrs", 0600));
  ASSERT_OK(w.root->Chown("/attrs", 5, 6));
  auto st = w.root->Statx(kAtFdCwd, "/attrs", 0);
  ASSERT_OK(st);
  EXPECT_EQ(st->mode, 0600);
  EXPECT_EQ(st->uid, 5u);
  EXPECT_EQ(st->gid, 6u);
  EXPECT_EQ(st->size, 5u);
  EXPECT_EQ(st->nlink, 1u);
}

TEST(CredTest, IdentityAndGroups) {
  auto a = MakeCred(1, 2, {30, 10, 20});
  auto b = MakeCred(1, 2, {10, 20, 30});  // same groups, different order
  auto c = MakeCred(1, 2, {10, 20});
  EXPECT_TRUE(a->SameIdentity(*b));
  EXPECT_FALSE(a->SameIdentity(*c));
  EXPECT_TRUE(a->InGroup(2));   // primary gid
  EXPECT_TRUE(a->InGroup(20));  // supplementary
  EXPECT_FALSE(a->InGroup(99));
  auto labeled = MakeCred(1, 2, {}, "role_t");
  EXPECT_FALSE(labeled->SameIdentity(*MakeCred(1, 2)));
  EXPECT_EQ(labeled->security_label(), "role_t");
}

TEST(CredTest, PccLazyCreationAndSharing) {
  auto cred = MakeCred(7, 7);
  EXPECT_EQ(cred->pcc(), nullptr);
  Pcc* p1 = cred->GetOrCreatePcc(4096);
  Pcc* p2 = cred->GetOrCreatePcc(8192);  // size ignored after creation
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1->bytes(), 4096u);
}

TEST(PathHandleTest, CopyAndMoveManageReferences) {
  TestWorld w;
  ASSERT_OK(w.root->Mkdir("/ph"));
  Dentry* d = w.kernel->dcache().LookupRef(w.root->root().dentry(), "ph");
  ASSERT_NE(d, nullptr);
  uint32_t base_refs = d->ref_count();
  {
    PathHandle h1 = PathHandle::Acquire(w.root->root().mnt(), d);
    EXPECT_EQ(d->ref_count(), base_refs + 1);
    PathHandle h2 = h1;  // copy adds a reference
    EXPECT_EQ(d->ref_count(), base_refs + 2);
    PathHandle h3 = std::move(h2);  // move transfers it
    EXPECT_EQ(d->ref_count(), base_refs + 2);
    h3.Reset();
    EXPECT_EQ(d->ref_count(), base_refs + 1);
  }
  EXPECT_EQ(d->ref_count(), base_refs);
  w.kernel->dcache().Dput(d);
}

TEST(ProfilerTest, RecordsPerSyscallTime) {
  TestWorld w;
  SyscallProfile profile;
  w.root->set_profiler(&profile);
  auto fd = w.root->Open("/p", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(w.root->WriteFd(*fd, "x"));
  ASSERT_OK(w.root->Close(*fd));
  ASSERT_OK(w.root->Statx(kAtFdCwd, "/p", 0));
  ASSERT_OK(w.root->Statx(kAtFdCwd, "/p", 0));
  ASSERT_OK(w.root->Unlink("/p"));
  w.root->set_profiler(nullptr);
  EXPECT_EQ(profile.calls[static_cast<size_t>(SyscallKind::kStat)], 2u);
  EXPECT_EQ(profile.calls[static_cast<size_t>(SyscallKind::kOpen)], 1u);
  EXPECT_EQ(profile.calls[static_cast<size_t>(SyscallKind::kUnlink)], 1u);
  EXPECT_GT(profile.TotalNs(), 0u);
  profile.Reset();
  EXPECT_EQ(profile.TotalNs(), 0u);
}

TEST(TeardownTest, KernelsComeAndGoCleanly) {
  // Exercise construction/teardown with live state several times; epoch
  // reclamation and superblock destruction must not trip asserts or leak
  // into later kernels.
  for (int round = 0; round < 5; ++round) {
    TestWorld w(round % 2 == 0 ? CacheConfig::Optimized()
                               : CacheConfig::Baseline());
    ASSERT_OK(w.root->Mkdir("/t"));
    for (int i = 0; i < 50; ++i) {
      auto fd = w.root->Open("/t/f" + std::to_string(i), kOCreat | kOWrite);
      ASSERT_OK(fd);
      ASSERT_OK(w.root->Close(*fd));
      ASSERT_OK(w.root->Statx(kAtFdCwd, "/t/f" + std::to_string(i), 0));
    }
    ASSERT_OK(w.root->Mount("/t", std::make_shared<MemFs>()));
    TaskPtr other = w.root->Fork();
    ASSERT_OK(other->UnshareMountNs());
  }
  SUCCEED();
}

TEST(StatsTest, ToStringMentionsEveryCounter) {
  TestWorld w(CacheConfig::Optimized());
  ASSERT_OK(w.root->Mkdir("/s"));
  ASSERT_OK(w.root->Statx(kAtFdCwd, "/s", 0));
  std::string s = w.kernel->stats().ToString();
  for (const char* key : {"lookups=", "fast_hit=", "slow=", "dc_hit=",
                          "neg=", "pcc_miss=", "dlht_miss=", "inval_walks=",
                          "locks="}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace dircache
