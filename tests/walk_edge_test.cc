// Path-walk edge cases on both kernels: name/path length limits, slash
// runs, dot chains, symlink depth, *at() semantics, and the forced
// fastpath-miss worst case.
#include "tests/test_util.h"

namespace dircache {
namespace {

class WalkEdgeTest : public ::testing::TestWithParam<bool> {
 protected:
  WalkEdgeTest()
      : world_(GetParam() ? CacheConfig::Optimized()
                          : CacheConfig::Baseline()) {}
  Task& T() { return *world_.root; }
  TestWorld world_;
};

TEST_P(WalkEdgeTest, SlashRunsAndDotChainsNormalize) {
  ASSERT_OK(T().Mkdir("/a"));
  ASSERT_OK(T().Mkdir("/a/b"));
  auto fd = T().Open("/a/b/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  for (const char* p :
       {"//a/b/f", "/a//b//f", "/a/./b/./f", "/././a/b/f", "/a/b/f",
        "/a/././b/f"}) {
    EXPECT_OK(T().Statx(kAtFdCwd, p, 0));
    EXPECT_OK(T().Statx(kAtFdCwd, p, 0));  // cached round
  }
  EXPECT_OK(T().Statx(kAtFdCwd, "/a/b/", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/a/b/.", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/a/b/..", 0));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/a/b/f/.", 0), Errno::kENOTDIR);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/a/b/f/.", 0), Errno::kENOTDIR);  // cached round
}

TEST_P(WalkEdgeTest, NameAndPathLengthLimits) {
  std::string long_name(255, 'n');
  ASSERT_OK(T().Mkdir("/" + long_name));
  EXPECT_OK(T().Statx(kAtFdCwd, "/" + long_name, 0));
  std::string too_long(256, 'n');
  EXPECT_ERR(T().Mkdir("/" + too_long), Errno::kENAMETOOLONG);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/" + too_long, 0), Errno::kENAMETOOLONG);
  // Whole-path limit (PATH_MAX = 4096).
  std::string deep = "/" + long_name;
  std::string path(5000, 'x');
  EXPECT_ERR(T().Statx(kAtFdCwd, "/" + path, 0), Errno::kENAMETOOLONG);
}

TEST_P(WalkEdgeTest, EmptyAndRootPaths) {
  EXPECT_ERR(T().Statx(kAtFdCwd, "", 0), Errno::kENOENT);
  EXPECT_OK(T().Statx(kAtFdCwd, "/", 0));
  auto st = T().Statx(kAtFdCwd, "/", 0);
  ASSERT_OK(st);
  EXPECT_TRUE(st->IsDir());
  EXPECT_OK(T().Statx(kAtFdCwd, "///", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/..", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/../..", 0));
}

TEST_P(WalkEdgeTest, SymlinkChainsUpToDepthLimit) {
  auto fd = T().Open("/end", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  std::string prev = "/end";
  // 30 chained links resolve; beyond 40 fails.
  for (int i = 0; i < 30; ++i) {
    std::string link = "/l" + std::to_string(i);
    ASSERT_OK(T().Symlink(prev, link));
    prev = link;
  }
  EXPECT_OK(T().Statx(kAtFdCwd, prev, 0));
  EXPECT_OK(T().Statx(kAtFdCwd, prev, 0));
  for (int i = 30; i < 45; ++i) {
    std::string link = "/l" + std::to_string(i);
    ASSERT_OK(T().Symlink(prev, link));
    prev = link;
  }
  EXPECT_ERR(T().Statx(kAtFdCwd, prev, 0), Errno::kELOOP);
}

TEST_P(WalkEdgeTest, SymlinkWithEmbeddedDotDot) {
  ASSERT_OK(T().Mkdir("/p"));
  ASSERT_OK(T().Mkdir("/p/q"));
  ASSERT_OK(T().Mkdir("/p/r"));
  auto fd = T().Open("/p/r/goal", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Symlink("../r/goal", "/p/q/jump"));
  EXPECT_OK(T().Statx(kAtFdCwd, "/p/q/jump", 0));
  EXPECT_OK(T().Statx(kAtFdCwd, "/p/q/jump", 0));
}

TEST_P(WalkEdgeTest, DanglingSymlink) {
  ASSERT_OK(T().Symlink("/nowhere/far", "/dangle"));
  EXPECT_ERR(T().Statx(kAtFdCwd, "/dangle", 0), Errno::kENOENT);
  EXPECT_ERR(T().Statx(kAtFdCwd, "/dangle", 0), Errno::kENOENT);
  EXPECT_OK(T().Statx(kAtFdCwd, "/dangle", kAtSymlinkNoFollow));
  EXPECT_ERR(T().Open("/dangle", kORead), Errno::kENOENT);
  // Creating the target repairs resolution.
  ASSERT_OK(T().Mkdir("/nowhere"));
  auto fd = T().Open("/nowhere/far", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  EXPECT_OK(T().Statx(kAtFdCwd, "/dangle", 0));
}

TEST_P(WalkEdgeTest, AtSyscallsFollowDirfdSemantics) {
  ASSERT_OK(T().Mkdir("/base"));
  ASSERT_OK(T().Mkdir("/base/sub"));
  auto fd = T().Open("/base/sub/f", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  auto dfd = T().Open("/base", kORead | kODirectory);
  ASSERT_OK(dfd);
  EXPECT_OK(T().FstatAt(*dfd, "sub/f", 0));
  EXPECT_OK(T().FstatAt(*dfd, "sub/f", 0));
  // Absolute paths ignore the dirfd.
  EXPECT_OK(T().FstatAt(*dfd, "/base/sub/f", 0));
  // kAtFdCwd resolves relative to the cwd.
  ASSERT_OK(T().Chdir("/base"));
  EXPECT_OK(T().FstatAt(kAtFdCwd, "sub/f", 0));
  ASSERT_OK(T().Chdir("/"));
  // A non-directory dirfd fails.
  auto ffd = T().Open("/base/sub/f", kORead);
  ASSERT_OK(ffd);
  EXPECT_ERR(T().FstatAt(*ffd, "x", 0), Errno::kENOTDIR);
  EXPECT_ERR(T().FstatAt(999, "x", 0), Errno::kEBADF);
  ASSERT_OK(T().MkdirAt(*dfd, "newdir"));
  EXPECT_OK(T().Statx(kAtFdCwd, "/base/newdir", 0));
  ASSERT_OK(T().UnlinkAt(*dfd, "newdir", /*rmdir=*/true));
}

TEST_P(WalkEdgeTest, ForcedFastpathMissAlwaysCorrect) {
  ASSERT_OK(T().Mkdir("/fm"));
  auto fd = T().Open("/fm/file", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().Statx(kAtFdCwd, "/fm/file", 0));
  PathWalker::force_fastpath_miss = true;
  for (int i = 0; i < 10; ++i) {
    EXPECT_OK(T().Statx(kAtFdCwd, "/fm/file", 0));
    EXPECT_ERR(T().Statx(kAtFdCwd, "/fm/none", 0), Errno::kENOENT);
  }
  PathWalker::force_fastpath_miss = false;
}

TEST_P(WalkEdgeTest, RenameAtAndReadLinkVariants) {
  ASSERT_OK(T().Mkdir("/ra"));
  auto dfd = T().Open("/ra", kORead | kODirectory);
  ASSERT_OK(dfd);
  auto fd = T().OpenAt(*dfd, "one", kOCreat | kOWrite);
  ASSERT_OK(fd);
  ASSERT_OK(T().Close(*fd));
  ASSERT_OK(T().RenameAt(*dfd, "one", *dfd, "two"));
  EXPECT_OK(T().FstatAt(*dfd, "two", 0));
  EXPECT_ERR(T().FstatAt(*dfd, "one", 0), Errno::kENOENT);
  ASSERT_OK(T().Symlink("two", "/ra/ln"));
  auto target = T().ReadLink("/ra/ln");
  ASSERT_OK(target);
  EXPECT_EQ(*target, "two");
  EXPECT_ERR(T().ReadLink("/ra/two"), Errno::kEINVAL);  // not a symlink
}

TEST_P(WalkEdgeTest, GetcwdTracksMoves) {
  ASSERT_OK(T().Mkdir("/w1"));
  ASSERT_OK(T().Mkdir("/w1/w2"));
  ASSERT_OK(T().Chdir("/w1/w2"));
  auto cwd = T().Getcwd();
  ASSERT_OK(cwd);
  EXPECT_EQ(*cwd, "/w1/w2");
  // Renaming an ancestor is reflected by getcwd (the dentry moved).
  ASSERT_OK(T().Rename("/w1", "/z1"));
  cwd = T().Getcwd();
  ASSERT_OK(cwd);
  EXPECT_EQ(*cwd, "/z1/w2");
  ASSERT_OK(T().Chdir("/"));
}

INSTANTIATE_TEST_SUITE_P(BothKernels, WalkEdgeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Optimized" : "Baseline";
                         });

}  // namespace
}  // namespace dircache
