// Workload library tests: tree generation determinism, application
// emulators' invariants, maildir semantics, web server output, the latency
// harness, and the PCC autosize extension.
#include <set>

#include "src/workload/apps.h"
#include "src/workload/latency.h"
#include "src/workload/maildir.h"
#include "src/workload/tree_gen.h"
#include "src/workload/webserver.h"
#include "src/core/pcc.h"
#include "tests/test_util.h"

namespace dircache {
namespace {

TEST(TreeGenTest, DeterministicAndWellFormed) {
  TestWorld w1;
  TestWorld w2;
  TreeSpec spec;
  spec.approx_files = 400;
  spec.seed = 99;
  auto t1 = GenerateSourceTree(*w1.root, "/src", spec);
  auto t2 = GenerateSourceTree(*w2.root, "/src", spec);
  ASSERT_OK(t1);
  ASSERT_OK(t2);
  EXPECT_EQ(t1->files, t2->files);  // same seed, same tree
  EXPECT_EQ(t1->dirs, t2->dirs);
  EXPECT_GE(t1->files.size(), 400u);
  // Every recorded path must exist.
  for (const auto& f : t1->files) {
    auto st = w1.root->Statx(kAtFdCwd, f, 0);
    ASSERT_OK(st);
    EXPECT_TRUE(st->IsRegular());
  }
  for (const auto& d : t1->dirs) {
    auto st = w1.root->Statx(kAtFdCwd, d, 0);
    ASSERT_OK(st);
    EXPECT_TRUE(st->IsDir());
  }
  for (const auto& l : t1->symlinks) {
    EXPECT_OK(w1.root->Statx(kAtFdCwd, l, kAtSymlinkNoFollow));
  }
}

TEST(AppsTest, FindCountsMatches) {
  TestWorld w;
  TreeSpec spec;
  spec.approx_files = 300;
  auto tree = GenerateSourceTree(*w.root, "/src", spec);
  ASSERT_OK(tree);
  auto r = RunFind(*w.root, "/src", "core");
  ASSERT_OK(r);
  size_t expected = 0;
  for (const auto& f : tree->files) {
    size_t slash = f.find_last_of('/');
    if (f.find("core", slash) != std::string::npos) {
      ++expected;
    }
  }
  EXPECT_GE(r->matches, expected);  // symlinks/dirs may add a few
  EXPECT_GE(r->entries_visited, tree->files.size());
}

TEST(AppsTest, DuSumsSizes) {
  TestWorld w;
  TreeSpec spec;
  spec.approx_files = 100;
  spec.file_content_bytes = 100;
  auto tree = GenerateSourceTree(*w.root, "/src", spec);
  ASSERT_OK(tree);
  auto r = RunDu(*w.root, "/src");
  ASSERT_OK(r);
  EXPECT_GE(r->bytes_processed, 100u * tree->files.size());
}

TEST(AppsTest, TarThenRmRoundTrip) {
  TestWorld w;
  TreeSpec spec;
  spec.approx_files = 150;
  auto tree = GenerateSourceTree(*w.root, "/src", spec);
  ASSERT_OK(tree);
  auto tar = RunTarExtract(*w.root, *tree, "/copy");
  ASSERT_OK(tar);
  // Every file has a copy.
  for (const auto& f : tree->files) {
    std::string copy = "/copy" + f.substr(4);  // strip "/src"
    EXPECT_OK(w.root->Statx(kAtFdCwd, copy, 0));
  }
  auto rm = RunRmRecursive(*w.root, "/copy");
  ASSERT_OK(rm);
  EXPECT_ERR(w.root->Statx(kAtFdCwd, "/copy", 0), Errno::kENOENT);
}

TEST(AppsTest, MakeCreatesObjects) {
  TestWorld w;
  TreeSpec spec;
  spec.approx_files = 200;
  auto tree = GenerateSourceTree(*w.root, "/src", spec);
  ASSERT_OK(tree);
  MakeOptions mo;
  auto r = RunMake(*w.root, *tree, mo);
  ASSERT_OK(r);
  EXPECT_GT(r->matches, 0u);  // objects built
  size_t objs = 0;
  for (const auto& f : tree->files) {
    if (f.size() > 2 && f.compare(f.size() - 2, 2, ".c") == 0) {
      if (w.root->Statx(kAtFdCwd, f.substr(0, f.size() - 2) + ".obj", 0).ok()) {
        ++objs;
      }
    }
  }
  EXPECT_EQ(objs, r->matches);
  // Incremental re-make compiles nothing.
  mo.incremental = true;
  auto r2 = RunMake(*w.root, *tree, mo);
  ASSERT_OK(r2);
  EXPECT_EQ(r2->matches, 0u);
}

TEST(AppsTest, UpdatedbWritesDatabase) {
  TestWorld w;
  TreeSpec spec;
  spec.approx_files = 120;
  auto tree = GenerateSourceTree(*w.root, "/src", spec);
  ASSERT_OK(tree);
  auto r = RunUpdatedb(*w.root, "/src", "/db");
  ASSERT_OK(r);
  auto st = w.root->Statx(kAtFdCwd, "/db", 0);
  ASSERT_OK(st);
  EXPECT_GT(st->size, 0u);
  EXPECT_GE(r->entries_visited, tree->files.size());
}

TEST(AppsTest, MkstempCreatesUniqueFiles) {
  TestWorld w;
  ASSERT_OK(w.root->Mkdir("/tmp"));
  Rng rng(1);
  std::set<std::string> names;
  for (int i = 0; i < 50; ++i) {
    auto name = RunMkstemp(*w.root, "/tmp", rng);
    ASSERT_OK(name);
    EXPECT_TRUE(names.insert(*name).second);
    EXPECT_OK(w.root->Statx(kAtFdCwd, *name, 0));
  }
}

TEST(MaildirTest, MarkTogglesSeenFlag) {
  TestWorld w(CacheConfig::Optimized());
  MaildirServer server(*w.root, "/mail");
  ASSERT_OK(server.CreateMailbox("inbox", 20));
  auto count = server.Rescan("inbox");
  ASSERT_OK(count);
  EXPECT_EQ(*count, 20u);
  Rng rng(2);
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(server.MarkRandom("inbox", rng));
  }
  count = server.Rescan("inbox");
  ASSERT_OK(count);
  EXPECT_EQ(*count, 20u);  // marking never loses mail
  ASSERT_OK(server.Deliver("inbox"));
  count = server.Rescan("inbox");
  ASSERT_OK(count);
  EXPECT_EQ(*count, 21u);
}

TEST(WebServerTest, ListingReflectsDirectory) {
  TestWorld w(CacheConfig::Optimized());
  auto files = GenerateFlatDir(*w.root, "/htdocs", 30, "page");
  ASSERT_OK(files);
  AutoIndexServer server(*w.root);
  auto page = server.HandleRequest("/htdocs");
  ASSERT_OK(page);
  for (int i = 0; i < 30; ++i) {
    EXPECT_NE(page->find("page" + std::to_string(i)), std::string::npos);
  }
  ASSERT_OK(w.root->Unlink("/htdocs/page7"));
  page = server.HandleRequest("/htdocs");
  ASSERT_OK(page);
  EXPECT_EQ(page->find("\"page7\""), std::string::npos);
  EXPECT_EQ(server.requests(), 2u);
}

TEST(LatencyHarnessTest, MeasuresMonotonicWork) {
  int counter = 0;
  auto r = MeasureLatency([&] { ++counter; }, 2'000'000, 8);
  EXPECT_GT(r.iterations, 0u);
  EXPECT_GT(counter, 0);
  EXPECT_GE(r.p99_ns, r.p50_ns);
}

TEST(PccAutosizeTest, GrowsUnderThrash) {
  CacheConfig cfg = CacheConfig::Optimized();
  cfg.pcc_bytes = 1024;  // 64 entries: guaranteed to thrash
  cfg.pcc_autosize = true;
  cfg.pcc_max_bytes = 64 * 1024;
  TestWorld w(cfg);
  TreeSpec spec;
  spec.approx_files = 1200;
  auto tree = GenerateSourceTree(*w.root, "/src", spec);
  ASSERT_OK(tree);
  // Full-path stats of every file churn per-file PCC entries.
  for (int round = 0; round < 12; ++round) {
    for (const auto& f : tree->files) {
      ASSERT_OK(w.root->Statx(kAtFdCwd, f, 0));
    }
  }
  Pcc* pcc = w.root->cred()->pcc();
  ASSERT_NE(pcc, nullptr);
  EXPECT_GT(pcc->bytes(), 1024u);  // the table grew
  EXPECT_LE(pcc->bytes(), 64u * 1024u);
  // Behaviour stays correct throughout.
  for (const auto& f : tree->files) {
    EXPECT_OK(w.root->Statx(kAtFdCwd, f, 0));
  }
}

TEST(PathStatsTest, CountsBytesAndComponents) {
  PathStats stats;
  stats.Note("/usr/include/stdio.h");
  stats.Note("name");
  EXPECT_EQ(stats.paths, 2u);
  EXPECT_DOUBLE_EQ(stats.AvgComponents(), 2.0);  // (3 + 1) / 2
  EXPECT_DOUBLE_EQ(stats.AvgLen(), (20.0 + 4.0) / 2);
}

}  // namespace
}  // namespace dircache
